// Package netproto is the wire protocol between the DSS (federation)
// server, the remote site servers, and clients: gob-encoded request /
// response pairs over a TCP connection, one outstanding request per
// connection at a time.
package netproto

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"ivdss/internal/relation"

	"ivdss/internal/wall"
)

// RequestKind selects the operation.
type RequestKind int

const (
	// KindPing checks liveness.
	KindPing RequestKind = iota + 1
	// KindTables lists the table names a remote site serves.
	KindTables
	// KindScan fetches a whole table from a remote site.
	KindScan
	// KindExec runs a SQL query: on a remote site against its own base
	// tables, or on the DSS through information-value-driven planning.
	KindExec
	// KindInsert appends rows to a base table on a remote site (the
	// stand-in for OLTP write traffic at the branches).
	KindInsert
	// KindStatus reports DSS catalog state: placements, replicas, and
	// staleness.
	KindStatus
	// KindMetrics dumps the DSS server's instrumentation as a flat
	// name → value map.
	KindMetrics
	// KindRegister pre-registers a query at the DSS so its plans are
	// pre-calculated for routing (Section 3.1 of the paper).
	KindRegister
	// KindBatch submits a workload of queries together; the DSS orders it
	// with the multi-query optimizer (Section 3.2) before executing.
	KindBatch
	// KindSnapshot fetches a full, versioned copy of a base table — the
	// sync agent's first pull for a newly registered replica, and its
	// fallback when a delta cursor has been invalidated.
	KindSnapshot
	// KindDelta fetches the rows appended to a base table since the
	// caller's replication cursor (Request.Cursor), so steady-state sync
	// cycles ship only the change set instead of the whole table.
	KindDelta
	// KindGossip exchanges anti-entropy digests between DSS front-end
	// shards: the caller's digest rides Request.Gossip, the callee merges
	// it and answers with its own on Response.Gossip.
	KindGossip
)

// GossipDigest is the wire form of one shard's anti-entropy state summary
// (internal/cluster.Digest): queue depth, breaker state, and replica
// freshness, versioned per node so merges are order-free.
type GossipDigest struct {
	Node    int
	Version uint64
	// Clock is the sender's experiment time (minutes) when the digest was
	// cut.
	Clock float64
	// QueueDepth is the shard's admission queue length; Slots its
	// execution parallelism.
	QueueDepth int
	Slots      int
	// TotalIV is the shard's cumulative delivered information value.
	TotalIV float64
	// OpenBreakers flags remote sites the shard currently sees down.
	OpenBreakers map[int]bool
	// Freshness maps replicated table names to last-sync stamps
	// (experiment minutes) — the coverage set work-stealing checks.
	Freshness map[string]float64
}

// SiteStatus describes one remote site's health as the DSS sees it, for
// KindStatus responses.
type SiteStatus struct {
	Site int
	Addr string
	// Breaker is the circuit-breaker state name: "closed", "open", or
	// "half-open".
	Breaker string
	// ConsecutiveFailures counts transport failures since the last success
	// (meaningful while closed).
	ConsecutiveFailures int
}

// Request is the client-to-server message.
type Request struct {
	Kind  RequestKind
	Table string         // KindScan, KindInsert
	SQL   string         // KindExec
	Rows  []relation.Row // KindInsert
	// BusinessValue applies to KindExec on the DSS; zero means 1.
	BusinessValue float64
	// Batch carries the workload for KindBatch.
	Batch []BatchQuery
	// Cursor is the replication cursor for KindDelta: the table version the
	// caller's replica already reflects. Base tables are append-only, so
	// the version is the count of rows ever inserted and the delta is the
	// suffix beyond it.
	Cursor uint64
	// Filter, for KindSnapshot and KindDelta, asks the site to drop rows
	// failing this predicate (a SQL boolean expression over the base
	// table's bare column names) before they cross the wire. Views with a
	// selective WHERE use it so only relevant deltas are shipped. Empty
	// means ship every row. Versions and cursors still count base rows, so
	// filtered and unfiltered pulls share one cursor space.
	Filter string
	// Columns, for KindSnapshot and KindDelta, restricts shipped rows to
	// these base columns (in this order). Nil means ship every column.
	// Like Filter, a pure byte optimization: the view's delta program
	// accepts either projection.
	Columns []string
	// TimeoutMillis is the caller's remaining deadline budget, carried on
	// the wire so the server can bound its own work (and its downstream
	// calls) by what the client will still wait for. Zero means no
	// deadline. Relative milliseconds rather than an absolute instant, so
	// clock skew between peers cannot corrupt the budget.
	TimeoutMillis int64
	// Tenant names the budget account for KindExec/KindBatch under
	// per-tenant weighted fair shedding; empty is the default tenant.
	Tenant string
	// Forwarded marks a KindExec/KindBatch a peer shard handed over via
	// work-stealing: the receiver must serve it locally, never re-steal
	// it, so a hand-off cannot loop.
	Forwarded bool
	// Gossip carries the caller's digest for KindGossip.
	Gossip *GossipDigest
}

// BudgetContext derives a context bounded by the request's wire deadline,
// if any. The server's request handlers run under it so a client that has
// stopped waiting also stops consuming server resources.
func (r *Request) BudgetContext(parent context.Context) (context.Context, context.CancelFunc) {
	if r.TimeoutMillis > 0 {
		return context.WithTimeout(parent, time.Duration(r.TimeoutMillis)*time.Millisecond)
	}
	return context.WithCancel(parent)
}

// BatchQuery is one member of a KindBatch workload.
type BatchQuery struct {
	SQL           string
	BusinessValue float64 // zero means 1
}

// ReportMeta carries the information-value accounting of a DSS report.
type ReportMeta struct {
	PlanSignature string
	CLMinutes     float64
	SLMinutes     float64
	Value         float64
	// Degraded marks a report produced under the failure-degradation
	// policy: at least one table was answered from a local replica because
	// its base site was unreachable, so SL reflects the replica's true
	// staleness rather than the planner's preferred choice.
	Degraded bool
}

// ReplicaStatus describes one replica in a KindStatus response.
type ReplicaStatus struct {
	Table            string
	Site             int
	LastSyncMinutes  float64 // experiment-time of the last completed sync
	StalenessMinutes float64
	// LastSyncAgeMinutes is now minus the last completed sync — how old the
	// replica's contents are, the quantity a QoS window bounds.
	LastSyncAgeMinutes float64
	// NextSyncMinutes is the experiment-time of the next scheduled sync;
	// negative when none is scheduled.
	NextSyncMinutes float64
	// PeriodMinutes is the sync period currently in force — under adaptive
	// cadence it drifts from the configured one as the controller
	// re-divides the budget.
	PeriodMinutes float64
	// Cursor is the replication cursor: rows of the base table the replica
	// reflects.
	Cursor uint64
}

// ViewStatus describes one materialized view in a KindStatus response.
type ViewStatus struct {
	View    string // view ID
	QueryID string // the query whose answer the view materializes
	Table   string // base table the view is maintained over
	Site    int    // site holding that base table
	// LastSyncMinutes is the experiment-time of the last completed refresh;
	// negative when the view has never materialized.
	LastSyncMinutes  float64
	StalenessMinutes float64
	// NextSyncMinutes is the experiment-time of the next scheduled refresh;
	// negative when none is scheduled.
	NextSyncMinutes float64
	// PeriodMinutes is the refresh period currently in force.
	PeriodMinutes float64
	// Cursor counts the base-table rows the view's state reflects.
	Cursor uint64
	// Rows is the current size of the materialized answer.
	Rows int
}

// BatchItem is one KindBatch member's outcome, aligned with the request's
// Batch slice.
type BatchItem struct {
	Err      string
	Degraded bool // see Response.Degraded
	Result   *relation.Table
	Meta     *ReportMeta
}

// Response is the server-to-client message.
type Response struct {
	Err string // empty on success
	// Degraded marks an error produced by the DSS degraded-mode policy: a
	// remote site is unavailable and no local replica exists to answer
	// from. Clients distinguish it from plain query errors via RemoteError.
	Degraded bool
	// Expired marks an error produced by the DSS admission controller: the
	// query was shed (or cancelled mid-flight) because its information
	// value expired before a report could be produced.
	Expired bool
	// MQOFallback marks a degraded scheduling decision: multi-query
	// workload formation or GA ordering failed, so the queries ran in plain
	// submission order instead. The reports themselves are still correct.
	MQOFallback bool
	Tables      []string
	Result      *relation.Table
	Meta        *ReportMeta
	Replicas    []ReplicaStatus
	Views       []ViewStatus
	Sites       []SiteStatus
	Metrics     map[string]float64
	Batch       []BatchItem
	// Version is the table version accompanying KindSnapshot and KindDelta
	// responses: the count of rows ever inserted into the base table.
	Version uint64
	// DeltaRows carries the appended rows for KindDelta.
	DeltaRows []relation.Row
	// Resync is set on a KindDelta response whose cursor the server cannot
	// serve (it is ahead of the table, e.g. after a site restart); the
	// caller must fall back to a full snapshot.
	Resync bool
	// Gossip carries the callee's digest answering KindGossip.
	Gossip *GossipDigest
}

// RemoteError is the typed client-side form of a server-reported error.
type RemoteError struct {
	Msg string
	// Degraded is set when the DSS refused the query because a remote site
	// is down and no replica could stand in (degraded mode), as opposed to
	// the query itself being invalid.
	Degraded bool
	// Expired is set when the DSS shed or cancelled the query because its
	// information value expired (core.ValueExpiredError on the server).
	Expired bool
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	switch {
	case e.Expired:
		return "netproto: remote error (value expired): " + e.Msg
	case e.Degraded:
		return "netproto: remote error (degraded): " + e.Msg
	default:
		return "netproto: remote error: " + e.Msg
	}
}

// ErrOrNil converts the wire error back to a Go error.
func (r *Response) ErrOrNil() error {
	if r.Err == "" {
		return nil
	}
	return &RemoteError{Msg: r.Err, Degraded: r.Degraded, Expired: r.Expired}
}

// Conn wraps a network connection with gob codecs.
type Conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// timeout bounds each round trip; zero means no deadline.
	timeout time.Duration
}

// NewConn wraps an established connection.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

// SetTimeout bounds every subsequent round trip on this connection: the
// deadline is re-armed per RoundTrip, so a hung peer surfaces as a timeout
// error instead of stalling the caller forever. Zero disables deadlines.
func (c *Conn) SetTimeout(d time.Duration) { c.timeout = d }

// Dial connects to a server.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	return DialContext(context.Background(), addr, timeout)
}

// DialContext connects to a server, bounded by both the timeout and the
// context: whichever expires first aborts the dial.
func DialContext(ctx context.Context, addr string, timeout time.Duration) (*Conn, error) {
	d := net.Dialer{Timeout: timeout}
	raw, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if cause := context.Cause(ctx); cause != nil {
			return nil, fmt.Errorf("netproto: dial %s: %w", addr, cause)
		}
		return nil, fmt.Errorf("netproto: dial %s: %w", addr, err)
	}
	return NewConn(raw), nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// WriteRequest sends a request.
func (c *Conn) WriteRequest(req *Request) error {
	if err := c.enc.Encode(req); err != nil {
		return fmt.Errorf("netproto: encode request: %w", err)
	}
	return nil
}

// ReadRequest receives a request (server side).
func (c *Conn) ReadRequest() (*Request, error) {
	var req Request
	if err := c.dec.Decode(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// WriteResponse sends a response (server side).
func (c *Conn) WriteResponse(resp *Response) error {
	if err := c.enc.Encode(resp); err != nil {
		return fmt.Errorf("netproto: encode response: %w", err)
	}
	return nil
}

// ReadResponse receives a response.
func (c *Conn) ReadResponse() (*Response, error) {
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("netproto: decode response: %w", err)
	}
	return &resp, nil
}

// RoundTrip sends one request and reads its response. With a timeout set,
// the whole exchange runs under one connection deadline, cleared on return
// so a pooled connection can idle without tripping it.
func (c *Conn) RoundTrip(req *Request) (*Response, error) {
	return c.RoundTripContext(context.Background(), req)
}

// RoundTripContext sends one request and reads its response under the
// tighter of the connection timeout and the context deadline. The
// context's remaining budget is stamped onto the request (TimeoutMillis)
// so the server can honour the caller's deadline too; a cancelled context
// interrupts an in-flight exchange by expiring the connection deadline.
// When the exchange fails after the context ended, the context's cause is
// returned so callers see the deadline, not a generic I/O timeout.
func (c *Conn) RoundTripContext(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	var deadline time.Time
	if c.timeout > 0 {
		deadline = wall.Now().Add(c.timeout)
	}
	if d, ok := ctx.Deadline(); ok {
		if deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
		ms := wall.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMillis = ms
	}
	if !deadline.IsZero() {
		if err := c.raw.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("netproto: set deadline: %w", err)
		}
		defer c.raw.SetDeadline(time.Time{})
	}
	// Explicit cancellation (not just deadline expiry) unblocks the
	// exchange by forcing the connection deadline into the past.
	stop := context.AfterFunc(ctx, func() {
		// Best-effort unblock; a conn too broken to set a deadline on is
		// already failing the exchange.
		_ = c.raw.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	resp, err := c.exchange(req)
	if err != nil {
		// The connection deadline and the context deadline are the same
		// instant, so the I/O error can beat the context's own timer by
		// microseconds. When the context is due, wait for it to fire so the
		// failure is attributed to its cause (a value expiry, a wire
		// budget) rather than surfacing as a generic network timeout.
		if ctx.Err() == nil {
			if d, ok := ctx.Deadline(); ok && !wall.Now().Before(d) {
				<-ctx.Done()
			}
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("netproto: round trip: %w", context.Cause(ctx))
		}
	}
	return resp, err
}

func (c *Conn) exchange(req *Request) (*Response, error) {
	if err := c.WriteRequest(req); err != nil {
		return nil, err
	}
	return c.ReadResponse()
}

// Call dials, round-trips one request, and closes — the convenience used
// by short-lived clients and the sync puller. The timeout bounds the dial
// and the round trip separately, so a server that accepts but never
// answers cannot hang the caller. On a server-reported error the response
// is still returned alongside the RemoteError.
func Call(addr string, req *Request, timeout time.Duration) (*Response, error) {
	return CallContext(context.Background(), addr, req, timeout)
}

// CallContext is Call bounded additionally by a context: the dial and the
// round trip each stop at the earlier of the timeout and the context
// deadline, and the remaining budget travels on the wire.
func CallContext(ctx context.Context, addr string, req *Request, timeout time.Duration) (*Response, error) {
	conn, err := DialContext(ctx, addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetTimeout(timeout)
	resp, err := conn.RoundTripContext(ctx, req)
	if err != nil {
		return nil, err
	}
	if err := resp.ErrOrNil(); err != nil {
		return resp, err
	}
	return resp, nil
}
