package netproto

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"
)

// budgetEchoServer answers every request with the received TimeoutMillis
// rendered into Tables[0], so tests can observe what travelled on the wire.
func budgetEchoServer(t *testing.T) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := NewConn(raw)
				defer conn.Close()
				for {
					req, err := conn.ReadRequest()
					if err != nil {
						return
					}
					resp := &Response{Tables: []string{fmt.Sprint(req.TimeoutMillis)}}
					if err := conn.WriteResponse(resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String(), func() {
		l.Close()
		wg.Wait()
	}
}

// blackholeServer accepts connections and reads requests but never answers.
func blackholeServer(t *testing.T) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		conns []net.Conn
	)
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, raw)
			mu.Unlock()
		}
	}()
	return l.Addr().String(), func() {
		l.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	}
}

func TestRoundTripContextStampsWireBudget(t *testing.T) {
	addr, stop := budgetEchoServer(t)
	defer stop()

	conn, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 750*time.Millisecond)
	defer cancel()
	resp, err := conn.RoundTripContext(ctx, &Request{Kind: KindPing})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := strconv.ParseInt(resp.Tables[0], 10, 64)
	if err != nil {
		t.Fatalf("server echoed %q, want a millisecond count", resp.Tables[0])
	}
	if ms <= 0 || ms > 750 {
		t.Errorf("wire budget %dms, want in (0, 750]", ms)
	}
}

func TestRoundTripContextNoDeadlineLeavesBudgetZero(t *testing.T) {
	addr, stop := budgetEchoServer(t)
	defer stop()

	conn, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	resp, err := conn.RoundTripContext(context.Background(), &Request{Kind: KindPing})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tables[0] != "0" {
		t.Errorf("wire budget %q without a deadline, want 0", resp.Tables[0])
	}
}

func TestRoundTripContextAlreadyExpired(t *testing.T) {
	addr, stop := budgetEchoServer(t)
	defer stop()

	conn, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := conn.RoundTripContext(ctx, &Request{Kind: KindPing}); !errors.Is(err, context.Canceled) {
		t.Errorf("round trip on dead context: %v, want context.Canceled", err)
	}
}

func TestBudgetContext(t *testing.T) {
	req := &Request{TimeoutMillis: 80}
	ctx, cancel := req.BudgetContext(context.Background())
	defer cancel()
	d, ok := ctx.Deadline()
	if !ok {
		t.Fatal("budget context has no deadline")
	}
	if until := time.Until(d); until <= 0 || until > 80*time.Millisecond {
		t.Errorf("deadline %v away, want within (0, 80ms]", until)
	}

	free, cancelFree := (&Request{}).BudgetContext(context.Background())
	defer cancelFree()
	if _, ok := free.Deadline(); ok {
		t.Error("zero TimeoutMillis should not impose a deadline")
	}
}

func TestCallContextDeadlineAgainstBlackhole(t *testing.T) {
	addr, stop := blackholeServer(t)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := CallContext(ctx, addr, &Request{Kind: KindPing}, 10*time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against blackhole succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 600*time.Millisecond {
		t.Errorf("call took %v, want well under the 10s connection timeout", elapsed)
	}
}

func TestPoolCallContextDeadline(t *testing.T) {
	addr, stop := blackholeServer(t)
	defer stop()

	p := NewPool(time.Second, 10*time.Second)
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.CallContext(ctx, addr, &Request{Kind: KindPing})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("pooled call against blackhole succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 600*time.Millisecond {
		t.Errorf("call took %v, want bounded by the context, not the pool timeout", elapsed)
	}
	// A deadline failure must not be "repaired" by redialing: that would
	// burn budget the caller no longer has.
	if n := p.IdleLen(addr); n != 0 {
		t.Errorf("pool kept %d idle conns after a deadline failure, want 0", n)
	}
}

func TestPoolCallContextExpiredUpFront(t *testing.T) {
	p := NewPool(time.Second, time.Second)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.CallContext(ctx, "127.0.0.1:1", &Request{Kind: KindPing}); !errors.Is(err, context.Canceled) {
		t.Errorf("call on dead context: %v, want context.Canceled", err)
	}
}

func TestDoContextSkipsBackoffPastDeadline(t *testing.T) {
	var slept []time.Duration
	r := Retrier{
		MaxAttempts: 5,
		BaseDelay:   200 * time.Millisecond,
		Jitter:      -1,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	calls := 0
	errBoom := errors.New("boom")
	err := r.DoContext(ctx, func(int) error { calls++; return errBoom })
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("error %v, want RetryError", err)
	}
	// The first backoff (200ms) would outlive the 50ms deadline, so the
	// retrier gives up after one attempt without sleeping at all.
	if calls != 1 || re.Attempts != 1 {
		t.Errorf("calls=%d attempts=%d, want 1 and 1", calls, re.Attempts)
	}
	if len(slept) != 0 {
		t.Errorf("slept %v, want no backoff past the deadline", slept)
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("error %v should wrap the op's last error", err)
	}
}

func TestDoContextStopsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Retrier{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		Jitter:      -1,
		Sleep:       func(time.Duration) {},
	}
	calls := 0
	err := r.DoContext(ctx, func(int) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("boom")
	})
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("error %v, want RetryError", err)
	}
	// Cancellation mid-backoff stops the loop with the op's last (more
	// informative) error; no third attempt runs.
	if calls != 2 || re.Attempts != 2 {
		t.Errorf("calls=%d attempts=%d, want 2 and 2 (cancelled after second attempt)", calls, re.Attempts)
	}
}

func TestDoContextDeadContextUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retrier{Sleep: func(time.Duration) {}}.DoContext(ctx, func(int) error {
		t.Fatal("op ran on a dead context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v, want context.Canceled", err)
	}
}

func TestRemoteErrorExpired(t *testing.T) {
	resp := &Response{Err: "shed at admission", Expired: true}
	err := resp.ErrOrNil()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v, want RemoteError", err)
	}
	if !re.Expired {
		t.Error("Expired flag lost crossing the wire")
	}
	if msg := re.Error(); msg != "netproto: remote error (value expired): shed at admission" {
		t.Errorf("unexpected message %q", msg)
	}
}
