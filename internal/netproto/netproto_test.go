package netproto

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ivdss/internal/relation"
)

// pipePair returns two connected Conns over an in-memory pipe.
func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestRequestRoundTrip(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()

	want := &Request{
		Kind:          KindExec,
		SQL:           "SELECT a FROM t",
		BusinessValue: .75,
		Table:         "t",
		Rows: []relation.Row{
			{relation.IntVal(1), relation.StrVal("x"), relation.FloatVal(2.5), relation.DateOf(2026, 7, 6)},
		},
	}
	done := make(chan error, 1)
	go func() { done <- client.WriteRequest(want) }()
	got, err := server.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.SQL != want.SQL || got.BusinessValue != want.BusinessValue {
		t.Errorf("request = %+v", got)
	}
	if len(got.Rows) != 1 || !relation.Equal(got.Rows[0][3], want.Rows[0][3]) {
		t.Errorf("rows = %v", got.Rows)
	}
}

func TestResponseRoundTripWithTable(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()

	result := relation.NewTable("r", relation.MustSchema(
		relation.Column{Name: "n", Type: relation.Int},
		relation.Column{Name: "s", Type: relation.Str},
	))
	result.MustInsert(relation.Row{relation.IntVal(7), relation.StrVal("seven")})
	want := &Response{
		Result: result,
		Meta:   &ReportMeta{PlanSignature: "t=base", CLMinutes: 1.5, SLMinutes: 2.5, Value: .9},
		Replicas: []ReplicaStatus{
			{Table: "t", Site: 1, LastSyncMinutes: 10, StalenessMinutes: 2},
		},
	}
	done := make(chan error, 1)
	go func() { done <- server.WriteResponse(want) }()
	got, err := client.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Result.NumRows() != 1 || got.Result.Rows[0][1].S != "seven" {
		t.Errorf("result = %v", got.Result.Rows)
	}
	if got.Meta == nil || got.Meta.Value != .9 {
		t.Errorf("meta = %+v", got.Meta)
	}
	if len(got.Replicas) != 1 || got.Replicas[0].StalenessMinutes != 2 {
		t.Errorf("replicas = %+v", got.Replicas)
	}
	if err := got.ErrOrNil(); err != nil {
		t.Errorf("ErrOrNil = %v", err)
	}
}

func TestErrOrNil(t *testing.T) {
	if err := (&Response{Err: "boom"}).ErrOrNil(); err == nil {
		t.Error("error response reported nil")
	}
	if err := (&Response{}).ErrOrNil(); err != nil {
		t.Errorf("clean response reported %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Error("dial to closed port succeeded")
	}
	if _, err := Call("127.0.0.1:1", &Request{Kind: KindPing}, 100*time.Millisecond); err == nil {
		t.Error("call to closed port succeeded")
	}
}

func TestCallSurfacesRemoteError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		conn := NewConn(raw)
		defer conn.Close()
		if _, err := conn.ReadRequest(); err != nil {
			return
		}
		_ = conn.WriteResponse(&Response{Err: "nope"})
	}()
	_, err = Call(l.Addr().String(), &Request{Kind: KindPing}, time.Second)
	if err == nil {
		t.Fatal("remote error swallowed")
	}
}

func TestMultipleSequentialRoundTrips(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	go func() {
		for {
			req, err := server.ReadRequest()
			if err != nil {
				return
			}
			_ = server.WriteResponse(&Response{Tables: []string{req.Table}})
		}
	}()
	for i := 0; i < 10; i++ {
		resp, err := client.RoundTrip(&Request{Kind: KindTables, Table: "t"})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Tables) != 1 || resp.Tables[0] != "t" {
			t.Fatalf("round %d: %v", i, resp.Tables)
		}
	}
}

// TestCallTimesOutOnUnresponsiveServer is the regression test for the
// missing-deadline bug: a server that accepts and then never reads or
// writes must not stall Call forever — the per-round-trip deadline has to
// fire.
func TestCallTimesOutOnUnresponsiveServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var (
		mu   sync.Mutex
		held []net.Conn
	)
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c) // accept and never respond
			mu.Unlock()
		}
	}()

	start := time.Now()
	_, err = Call(l.Addr().String(), &Request{Kind: KindPing}, 150*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call to black-holed server succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a net timeout", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("call took %v, deadline did not bound the round trip", elapsed)
	}
}

// TestRoundTripTimeoutOnConn covers the persistent-connection path the DSS
// executor and sync puller use: SetTimeout must bound each RoundTrip.
func TestRoundTripTimeoutOnConn(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	client.SetTimeout(100 * time.Millisecond)
	// The server side never reads: the write (or the read of the missing
	// response) must time out.
	if _, err := client.RoundTrip(&Request{Kind: KindPing}); err == nil {
		t.Fatal("round trip against a mute peer succeeded")
	}
}

func TestReadResponseOnClosedConn(t *testing.T) {
	client, server := pipePair()
	server.Close()
	if _, err := client.ReadResponse(); err == nil {
		t.Error("read from closed peer succeeded")
	}
	client.Close()
}
