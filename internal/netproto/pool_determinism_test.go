package netproto

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// failCloseConn is a net.Conn whose Close always fails with a
// per-connection error; every other operation is inert.
type failCloseConn struct {
	err error
}

func (c *failCloseConn) Read(b []byte) (int, error)         { return 0, c.err }
func (c *failCloseConn) Write(b []byte) (int, error)        { return len(b), nil }
func (c *failCloseConn) Close() error                       { return c.err }
func (c *failCloseConn) LocalAddr() net.Addr                { return nil }
func (c *failCloseConn) RemoteAddr() net.Addr               { return nil }
func (c *failCloseConn) SetDeadline(t time.Time) error      { return nil }
func (c *failCloseConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *failCloseConn) SetWriteDeadline(t time.Time) error { return nil }

// Close walks idle connections in sorted address order, so when several
// fail to close, the surfaced first error is always the one from the
// lexically smallest address — not whichever the map yielded first.
func TestPoolCloseFirstErrDeterministic(t *testing.T) {
	const want = "netproto: pool close: close a.example:1"
	for i := 0; i < 32; i++ {
		p := NewPool(time.Second, time.Second)
		for _, addr := range []string{"z.example:3", "m.example:2", "a.example:1"} {
			p.idle[addr] = []pooledConn{{
				conn:  NewConn(&failCloseConn{err: fmt.Errorf("close %s", addr)}),
				since: time.Now(),
			}}
		}
		err := p.Close()
		if err == nil || err.Error() != want {
			t.Fatalf("run %d: Close error = %v; want %q", i, err, want)
		}
	}
}
