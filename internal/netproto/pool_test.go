package netproto

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer answers every request with its Table echoed back in Tables.
// It returns the listening address and a close func.
func echoServer(t *testing.T) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns []net.Conn
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, raw)
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := NewConn(raw)
				defer conn.Close()
				for {
					req, err := conn.ReadRequest()
					if err != nil {
						return
					}
					if err := conn.WriteResponse(&Response{Tables: []string{req.Table}}); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String(), func() {
		l.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
}

func TestPoolReusesConnections(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p := NewPool(time.Second, time.Second)
	defer p.Close()
	for i := 0; i < 5; i++ {
		resp, err := p.Call(addr, &Request{Kind: KindTables, Table: "t"})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Tables) != 1 || resp.Tables[0] != "t" {
			t.Fatalf("round %d: %v", i, resp.Tables)
		}
	}
	if got := p.IdleLen(addr); got != 1 {
		t.Errorf("idle connections = %d, want 1 (sequential calls reuse one conn)", got)
	}
}

func TestPoolSurvivesServerDroppingIdleConns(t *testing.T) {
	addr, stop := echoServer(t)
	p := NewPool(time.Second, time.Second)
	defer p.Close()
	if _, err := p.Call(addr, &Request{Kind: KindPing}); err != nil {
		t.Fatal(err)
	}
	// Kill the server: the pooled idle connection is now dead. A new
	// server on the same port would be ideal but the port is ephemeral, so
	// assert the dead connection is detected rather than handed out.
	stop()
	if _, err := p.Call(addr, &Request{Kind: KindPing}); err == nil {
		t.Fatal("call against a dead server succeeded")
	}
	if got := p.IdleLen(addr); got != 0 {
		t.Errorf("idle connections = %d after server death, want 0", got)
	}
}

func TestPoolConcurrentCallers(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p := NewPool(time.Second, time.Second)
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := p.Call(addr, &Request{Kind: KindTables, Table: "x"})
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Tables) != 1 || resp.Tables[0] != "x" {
					errs <- errors.New("bad echo")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := p.IdleLen(addr); got > p.maxIdle() {
		t.Errorf("idle connections = %d, want ≤ %d", got, p.maxIdle())
	}
}

func TestPoolCloseDiscardsIdle(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p := NewPool(time.Second, time.Second)
	if _, err := p.Call(addr, &Request{Kind: KindPing}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.IdleLen(addr); got != 0 {
		t.Errorf("idle connections = %d after close", got)
	}
	// Calls after Close still work as one-shot connections.
	if _, err := p.Call(addr, &Request{Kind: KindPing}); err != nil {
		t.Fatalf("call after close: %v", err)
	}
	if got := p.IdleLen(addr); got != 0 {
		t.Errorf("closed pool retained a connection")
	}
}
