package netproto

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetrierSucceedsAfterTransientFailures(t *testing.T) {
	var slept []time.Duration
	calls := 0
	r := Retrier{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		Jitter:      -1, // exact delays
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	err := r.DoContext(context.Background(), func(attempt int) error {
		calls++
		if attempt < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoff = %v, want %v (exponential, no jitter)", slept, want)
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	calls := 0
	r := Retrier{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	boom := errors.New("boom")
	err := r.DoContext(context.Background(), func(int) error { calls++; return boom })
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	var re *RetryError
	if !errors.As(err, &re) || re.Attempts != 3 || !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestRetrierBudgetCap(t *testing.T) {
	var slept time.Duration
	r := Retrier{
		MaxAttempts: 10,
		BaseDelay:   40 * time.Millisecond,
		Jitter:      -1,
		Budget:      100 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept += d },
	}
	calls := 0
	err := r.DoContext(context.Background(), func(int) error { calls++; return errors.New("down") })
	if err == nil {
		t.Fatal("budget-capped retrier succeeded")
	}
	// Delays 40ms, 80ms: the second would overflow the 100ms budget, so
	// only two attempts run and total sleep stays within budget.
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
	if slept > 100*time.Millisecond {
		t.Errorf("slept %v, beyond budget", slept)
	}
}

func TestRetrierNonRetryableStopsImmediately(t *testing.T) {
	fatal := errors.New("schema mismatch")
	calls := 0
	r := Retrier{
		MaxAttempts: 5,
		Sleep:       func(time.Duration) {},
		Retryable:   func(err error) bool { return !errors.Is(err, fatal) },
	}
	if err := r.DoContext(context.Background(), func(int) error { calls++; return fatal }); !errors.Is(err, fatal) {
		t.Errorf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestRetrierJitterDeterministicUnderSeededRand(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		seq := []float64{.1, .9, .5}
		i := 0
		r := Retrier{
			MaxAttempts: 4,
			BaseDelay:   100 * time.Millisecond,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
			Rand:        func() float64 { v := seq[i%len(seq)]; i++; return v },
		}
		_ = r.DoContext(context.Background(), func(int) error { return errors.New("down") })
		return slept
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("sleeps = %v / %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Jitter must actually perturb the base delay.
	if a[0] == 100*time.Millisecond {
		t.Errorf("first delay %v unjittered", a[0])
	}
}
