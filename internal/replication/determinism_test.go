package replication

import (
	"fmt"
	"testing"

	"ivdss/internal/core"
)

// NextSyncAt is a min-fold over map-ordered tables: whatever order the
// tables were registered in (and thus however the map lays them out),
// the earliest pending instant must come back.
func TestNextSyncAtRegistrationOrderInvariant(t *testing.T) {
	const n = 16
	for rot := 0; rot < n; rot++ {
		m := NewManager()
		for i := 0; i < n; i++ {
			j := (i + rot) % n
			id := core.TableID(fmt.Sprintf("t%02d", j))
			s := Schedule{Times: []core.Time{core.Time(10 + j), core.Time(100 + j)}}
			if err := m.Register(id, s); err != nil {
				t.Fatalf("Register(%s): %v", id, err)
			}
		}
		at, ok := m.NextSyncAt()
		if !ok || at != core.Time(10) {
			t.Fatalf("rotation %d: NextSyncAt = %v, %v; want 10, true", rot, at, ok)
		}
	}
}
