// Package replication manages the local replicas of remote base tables:
// per-table synchronization schedules, the completed/upcoming sync state
// the planner consumes, and QoS staleness checks.
//
// The paper's setup has "a small set of frequently accessed base tables ...
// replicated from the remote servers to the local server", each on its own
// synchronization cycle, with a QoS-aware replication manager ensuring
// updates propagate within a predefined window. Schedules here are
// materialized in advance (periodic or drawn from an exponential stream,
// as in the paper's simulator), which is exactly what lets the planner
// reason about *future* replica versions.
package replication

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ivdss/internal/core"
	"ivdss/internal/stats"
)

// Schedule is the ascending list of synchronization completion times for
// one table over the experiment horizon.
type Schedule struct {
	Times []core.Time
}

// Validate reports whether the schedule is strictly ascending.
func (s Schedule) Validate() error {
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i] <= s.Times[i-1] {
			return fmt.Errorf("replication: schedule not ascending at %d (%v after %v)", i, s.Times[i], s.Times[i-1])
		}
	}
	return nil
}

// Periodic returns a fixed-period schedule: offset, offset+period, ...,
// up to (and including times at) until.
func Periodic(period core.Duration, offset, until core.Time) (Schedule, error) {
	if period <= 0 {
		return Schedule{}, fmt.Errorf("replication: period %v must be positive", period)
	}
	var times []core.Time
	for t := offset; t <= until; t += period {
		times = append(times, t)
	}
	return Schedule{Times: times}, nil
}

// Exponential returns a schedule whose inter-sync gaps are exponentially
// distributed with the given mean — the paper's simulator setup. The
// result is deterministic in the seed.
func Exponential(mean core.Duration, seed int64, until core.Time) (Schedule, error) {
	if mean <= 0 {
		return Schedule{}, fmt.Errorf("replication: mean %v must be positive", mean)
	}
	if until <= 0 {
		return Schedule{}, fmt.Errorf("replication: horizon %v must be positive", until)
	}
	stream := stats.NewExponentialStream(mean, seed)
	var times []core.Time
	t := core.Time(0)
	for {
		t += stream.Next()
		if t > until {
			return Schedule{Times: times}, nil
		}
		times = append(times, t)
	}
}

// SyncEvent records one completed synchronization.
type SyncEvent struct {
	Table core.TableID
	At    core.Time
}

// Manager tracks the synchronization state of every replicated table. All
// methods are safe for concurrent use: the live server's sync agent
// rewrites schedules while request handlers read StateFor, so the manager
// carries its own lock rather than relying on a single driving goroutine.
type Manager struct {
	mu     sync.Mutex
	tables map[core.TableID]*tableSync
	// onSync, when set, is invoked for each newly completed sync (in time
	// order) so the owner can copy data into the replica store. It is
	// called without the manager lock held.
	onSync func(SyncEvent)
}

type tableSync struct {
	schedule []core.Time
	applied  int // schedule[:applied] have completed
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{tables: make(map[core.TableID]*tableSync)}
}

// OnSync registers a callback invoked for each sync as Advance applies it.
func (m *Manager) OnSync(fn func(SyncEvent)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onSync = fn
}

// Register adds a replicated table with its schedule. Re-registering a
// table is an error. An empty schedule is valid: the live sync agent
// registers tables bare and fills in completions (RecordSync) and upcoming
// syncs (Reschedule) as it runs.
func (m *Manager) Register(id core.TableID, s Schedule) error {
	if id == "" {
		return fmt.Errorf("replication: empty table ID")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tables[id]; ok {
		return fmt.Errorf("replication: table %s already registered", id)
	}
	times := make([]core.Time, len(s.Times))
	copy(times, s.Times)
	m.tables[id] = &tableSync{schedule: times}
	return nil
}

// Unregister drops a replicated table (a runtime demotion). It reports
// whether the table was registered.
func (m *Manager) Unregister(id core.TableID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.tables[id]
	delete(m.tables, id)
	return ok
}

// Replicated reports whether the table has a registered replica.
func (m *Manager) Replicated(id core.TableID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.tables[id]
	return ok
}

// Tables returns the registered table IDs, sorted.
func (m *Manager) Tables() []core.TableID {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]core.TableID, 0, len(m.tables))
	for id := range m.tables {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Advance applies every scheduled sync with completion time <= now, in
// global time order, invoking the OnSync callback for each, and returns
// the newly applied events. Callbacks run outside the manager lock so they
// may call back into the manager.
func (m *Manager) Advance(now core.Time) []SyncEvent {
	m.mu.Lock()
	var events []SyncEvent
	for id, ts := range m.tables {
		for ts.applied < len(ts.schedule) && ts.schedule[ts.applied] <= now {
			events = append(events, SyncEvent{Table: id, At: ts.schedule[ts.applied]})
			ts.applied++
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Table < events[j].Table
	})
	onSync := m.onSync
	m.mu.Unlock()
	if onSync != nil {
		for _, ev := range events {
			onSync(ev)
		}
	}
	return events
}

// NextSyncAt returns the completion time of the earliest not-yet-applied
// sync across all tables, or core.Time infinity substitute (ok=false) when
// none remain.
func (m *Manager) NextSyncAt() (core.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// A pure min-fold: the earliest pending instant is the same whatever
	// order the tables are visited in.
	best := core.Time(math.Inf(1))
	found := false
	for _, ts := range m.tables {
		if ts.applied < len(ts.schedule) {
			best = min(best, ts.schedule[ts.applied])
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// RecordSync records an out-of-schedule completed synchronization at `at`
// — the live sync agent's actual completion instant, which drifts from the
// materialized schedule under deferrals and transfer time. Scheduled
// entries at or before `at` that have not completed are dropped (the
// completed sync supersedes them) and `at` becomes the latest completed
// sync, so StateFor and Staleness reflect exactly what the replica store
// holds. `at` must not precede the last completed sync.
func (m *Manager) RecordSync(id core.TableID, at core.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.tables[id]
	if !ok {
		return fmt.Errorf("replication: table %s not registered", id)
	}
	if ts.applied > 0 {
		if last := ts.schedule[ts.applied-1]; at < last {
			return fmt.Errorf("replication: sync at %v precedes last completed sync %v of %s", at, last, id)
		} else if at == last {
			return nil // already recorded
		}
	}
	// Drop pending entries the completed sync supersedes, then splice the
	// completion into the applied prefix.
	rest := ts.schedule[ts.applied:]
	for len(rest) > 0 && rest[0] <= at {
		rest = rest[1:]
	}
	sched := make([]core.Time, 0, ts.applied+1+len(rest))
	sched = append(sched, ts.schedule[:ts.applied]...)
	sched = append(sched, at)
	sched = append(sched, rest...)
	ts.schedule = sched
	ts.applied++
	return nil
}

// Reschedule replaces the table's not-yet-completed schedule suffix with
// `future` (strictly ascending, every entry after the last completed
// sync). The adaptive cadence controller calls it whenever it re-divides
// the sync budget, so the planner's view of upcoming replica versions
// tracks the cadence actually in force.
func (m *Manager) Reschedule(id core.TableID, future []core.Time) error {
	if err := (Schedule{Times: future}).Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.tables[id]
	if !ok {
		return fmt.Errorf("replication: table %s not registered", id)
	}
	if ts.applied > 0 && len(future) > 0 && future[0] <= ts.schedule[ts.applied-1] {
		return fmt.Errorf("replication: rescheduled sync %v not after last completed sync %v of %s",
			future[0], ts.schedule[ts.applied-1], id)
	}
	sched := make([]core.Time, 0, ts.applied+len(future))
	sched = append(sched, ts.schedule[:ts.applied]...)
	sched = append(sched, future...)
	ts.schedule = sched
	return nil
}

// StateFor returns the planner's view of one replicated table at time now:
// the last completed sync and the scheduled syncs within the horizon
// (horizon 0 means all remaining). It returns nil for unreplicated tables.
//
// The state is derived from the schedule rather than the applied counter,
// so callers may ask about any `now` at or after the last Advance.
func (m *Manager) StateFor(id core.TableID, now core.Time, horizon core.Duration) *core.ReplicaState {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.tables[id]
	if !ok {
		return nil
	}
	end := now + horizon
	if horizon == 0 {
		end = core.Time(1<<62 - 1)
	}
	// First schedule entry strictly after now.
	cut := sort.SearchFloat64s(ts.schedule, now)
	for cut < len(ts.schedule) && ts.schedule[cut] <= now {
		cut++
	}
	rs := &core.ReplicaState{LastSync: -1}
	seenPast := cut > 0
	if seenPast {
		rs.LastSync = ts.schedule[cut-1]
	}
	for _, t := range ts.schedule[cut:] {
		if t > end {
			break
		}
		rs.NextSyncs = append(rs.NextSyncs, t)
	}
	return finishState(rs, seenPast, now)
}

// finishState encodes "never synchronized yet" so the planner's
// replicaVersionAt sees no usable current version: LastSync is pushed past
// now onto the first future sync (or left unusable when none exist).
func finishState(rs *core.ReplicaState, seenPast bool, now core.Time) *core.ReplicaState {
	if seenPast {
		return rs
	}
	if len(rs.NextSyncs) == 0 {
		// No sync ever: model as a replica that never becomes usable.
		return &core.ReplicaState{LastSync: now + 1e18}
	}
	return &core.ReplicaState{LastSync: rs.NextSyncs[0], NextSyncs: rs.NextSyncs[1:]}
}

// Staleness returns now minus the last completed sync of the table, the
// quantity a QoS window bounds. The second result is false when the table
// is unreplicated or has never synchronized by `now`.
func (m *Manager) Staleness(id core.TableID, now core.Time) (core.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.tables[id]
	if !ok {
		return 0, false
	}
	cut := sort.SearchFloat64s(ts.schedule, now)
	for cut < len(ts.schedule) && ts.schedule[cut] <= now {
		cut++
	}
	if cut == 0 {
		return 0, false
	}
	return now - ts.schedule[cut-1], true
}

// QoSViolations lists the replicated tables whose staleness at `now`
// exceeds the window — the monitoring hook a QoS-aware replication manager
// exposes.
func (m *Manager) QoSViolations(now core.Time, window core.Duration) []core.TableID {
	var out []core.TableID
	for _, id := range m.Tables() {
		s, ok := m.Staleness(id, now)
		if ok && s > window {
			out = append(out, id)
		}
	}
	return out
}
