// Package replication manages the local replicas of remote base tables:
// per-table synchronization schedules, the completed/upcoming sync state
// the planner consumes, and QoS staleness checks.
//
// The paper's setup has "a small set of frequently accessed base tables ...
// replicated from the remote servers to the local server", each on its own
// synchronization cycle, with a QoS-aware replication manager ensuring
// updates propagate within a predefined window. Schedules here are
// materialized in advance (periodic or drawn from an exponential stream,
// as in the paper's simulator), which is exactly what lets the planner
// reason about *future* replica versions.
package replication

import (
	"fmt"
	"sort"

	"ivdss/internal/core"
	"ivdss/internal/stats"
)

// Schedule is the ascending list of synchronization completion times for
// one table over the experiment horizon.
type Schedule struct {
	Times []core.Time
}

// Validate reports whether the schedule is strictly ascending.
func (s Schedule) Validate() error {
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i] <= s.Times[i-1] {
			return fmt.Errorf("replication: schedule not ascending at %d (%v after %v)", i, s.Times[i], s.Times[i-1])
		}
	}
	return nil
}

// Periodic returns a fixed-period schedule: offset, offset+period, ...,
// up to (and including times at) until.
func Periodic(period core.Duration, offset, until core.Time) (Schedule, error) {
	if period <= 0 {
		return Schedule{}, fmt.Errorf("replication: period %v must be positive", period)
	}
	var times []core.Time
	for t := offset; t <= until; t += period {
		times = append(times, t)
	}
	return Schedule{Times: times}, nil
}

// Exponential returns a schedule whose inter-sync gaps are exponentially
// distributed with the given mean — the paper's simulator setup. The
// result is deterministic in the seed.
func Exponential(mean core.Duration, seed int64, until core.Time) (Schedule, error) {
	if mean <= 0 {
		return Schedule{}, fmt.Errorf("replication: mean %v must be positive", mean)
	}
	stream := stats.NewExponentialStream(mean, seed)
	var times []core.Time
	t := core.Time(0)
	for {
		t += stream.Next()
		if t > until {
			return Schedule{Times: times}, nil
		}
		times = append(times, t)
	}
}

// SyncEvent records one completed synchronization.
type SyncEvent struct {
	Table core.TableID
	At    core.Time
}

// Manager tracks the synchronization state of every replicated table. It
// is single-goroutine like the simulator that drives it; the live server
// wraps it with its own lock.
type Manager struct {
	tables map[core.TableID]*tableSync
	// onSync, when set, is invoked for each newly completed sync (in time
	// order) so the owner can copy data into the replica store.
	onSync func(SyncEvent)
}

type tableSync struct {
	schedule []core.Time
	applied  int // schedule[:applied] have completed
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{tables: make(map[core.TableID]*tableSync)}
}

// OnSync registers a callback invoked for each sync as Advance applies it.
func (m *Manager) OnSync(fn func(SyncEvent)) { m.onSync = fn }

// Register adds a replicated table with its schedule. Re-registering a
// table is an error.
func (m *Manager) Register(id core.TableID, s Schedule) error {
	if id == "" {
		return fmt.Errorf("replication: empty table ID")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if _, ok := m.tables[id]; ok {
		return fmt.Errorf("replication: table %s already registered", id)
	}
	times := make([]core.Time, len(s.Times))
	copy(times, s.Times)
	m.tables[id] = &tableSync{schedule: times}
	return nil
}

// Replicated reports whether the table has a registered replica.
func (m *Manager) Replicated(id core.TableID) bool {
	_, ok := m.tables[id]
	return ok
}

// Tables returns the registered table IDs, sorted.
func (m *Manager) Tables() []core.TableID {
	ids := make([]core.TableID, 0, len(m.tables))
	for id := range m.tables {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Advance applies every scheduled sync with completion time <= now, in
// global time order, invoking the OnSync callback for each, and returns
// the newly applied events.
func (m *Manager) Advance(now core.Time) []SyncEvent {
	var events []SyncEvent
	for id, ts := range m.tables {
		for ts.applied < len(ts.schedule) && ts.schedule[ts.applied] <= now {
			events = append(events, SyncEvent{Table: id, At: ts.schedule[ts.applied]})
			ts.applied++
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Table < events[j].Table
	})
	if m.onSync != nil {
		for _, ev := range events {
			m.onSync(ev)
		}
	}
	return events
}

// NextSyncAt returns the completion time of the earliest not-yet-applied
// sync across all tables, or core.Time infinity substitute (ok=false) when
// none remain.
func (m *Manager) NextSyncAt() (core.Time, bool) {
	best := core.Time(0)
	found := false
	for _, ts := range m.tables {
		if ts.applied < len(ts.schedule) {
			t := ts.schedule[ts.applied]
			if !found || t < best {
				best, found = t, true
			}
		}
	}
	return best, found
}

// StateFor returns the planner's view of one replicated table at time now:
// the last completed sync and the scheduled syncs within the horizon
// (horizon 0 means all remaining). It returns nil for unreplicated tables.
//
// The state is derived from the schedule rather than the applied counter,
// so callers may ask about any `now` at or after the last Advance.
func (m *Manager) StateFor(id core.TableID, now core.Time, horizon core.Duration) *core.ReplicaState {
	ts, ok := m.tables[id]
	if !ok {
		return nil
	}
	end := now + horizon
	if horizon == 0 {
		end = core.Time(1<<62 - 1)
	}
	// First schedule entry strictly after now.
	cut := sort.SearchFloat64s(ts.schedule, now)
	for cut < len(ts.schedule) && ts.schedule[cut] <= now {
		cut++
	}
	rs := &core.ReplicaState{LastSync: -1}
	seenPast := cut > 0
	if seenPast {
		rs.LastSync = ts.schedule[cut-1]
	}
	for _, t := range ts.schedule[cut:] {
		if t > end {
			break
		}
		rs.NextSyncs = append(rs.NextSyncs, t)
	}
	return finishState(rs, seenPast, now)
}

// finishState encodes "never synchronized yet" so the planner's
// replicaVersionAt sees no usable current version: LastSync is pushed past
// now onto the first future sync (or left unusable when none exist).
func finishState(rs *core.ReplicaState, seenPast bool, now core.Time) *core.ReplicaState {
	if seenPast {
		return rs
	}
	if len(rs.NextSyncs) == 0 {
		// No sync ever: model as a replica that never becomes usable.
		return &core.ReplicaState{LastSync: now + 1e18}
	}
	return &core.ReplicaState{LastSync: rs.NextSyncs[0], NextSyncs: rs.NextSyncs[1:]}
}

// Staleness returns now minus the last completed sync of the table, the
// quantity a QoS window bounds. The second result is false when the table
// is unreplicated or has never synchronized by `now`.
func (m *Manager) Staleness(id core.TableID, now core.Time) (core.Duration, bool) {
	ts, ok := m.tables[id]
	if !ok {
		return 0, false
	}
	cut := sort.SearchFloat64s(ts.schedule, now)
	for cut < len(ts.schedule) && ts.schedule[cut] <= now {
		cut++
	}
	if cut == 0 {
		return 0, false
	}
	return now - ts.schedule[cut-1], true
}

// QoSViolations lists the replicated tables whose staleness at `now`
// exceeds the window — the monitoring hook a QoS-aware replication manager
// exposes.
func (m *Manager) QoSViolations(now core.Time, window core.Duration) []core.TableID {
	var out []core.TableID
	for _, id := range m.Tables() {
		s, ok := m.Staleness(id, now)
		if ok && s > window {
			out = append(out, id)
		}
	}
	return out
}
