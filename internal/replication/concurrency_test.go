package replication

import (
	"math"
	"sync"
	"testing"

	"ivdss/internal/core"
)

// The manager is mutated by the live sync agent (RecordSync, Reschedule,
// Register/Unregister) while request handlers read StateFor and Staleness
// concurrently. This test hammers every combination under -race.
func TestManagerConcurrentAdvanceStateFor(t *testing.T) {
	m := NewManager()
	tables := []core.TableID{"a", "b", "c", "d"}
	for i, id := range tables {
		sched, err := Periodic(1+core.Duration(i), 0, 500)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(id, sched); err != nil {
			t.Fatal(err)
		}
	}

	const iters = 400
	var wg sync.WaitGroup
	// Writer: walks the clock forward applying scheduled syncs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			m.Advance(core.Time(i))
		}
	}()
	// Writer: records live completions and rewrites the future schedule of
	// its own table, like the sync agent does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Register("live", Schedule{}); err != nil {
			t.Error(err)
			return
		}
		at := core.Time(0)
		for i := 0; i < iters; i++ {
			at += .5
			if err := m.RecordSync("live", at); err != nil {
				t.Error(err)
				return
			}
			if err := m.Reschedule("live", []core.Time{at + 1, at + 2}); err != nil {
				t.Error(err)
				return
			}
		}
		m.Unregister("live")
	}()
	// Readers: the planner's view, staleness, and enumeration.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				now := core.Time(i)
				for _, id := range tables {
					if rs := m.StateFor(id, now, 10); rs == nil {
						t.Errorf("StateFor(%s) = nil", id)
						return
					}
					m.Staleness(id, now)
				}
				m.StateFor("live", now, 10) // may be nil mid-register: fine
				m.Tables()
				m.NextSyncAt()
				m.QoSViolations(now, 3)
			}
		}()
	}
	wg.Wait()
}

func TestRecordSyncSupersedesPendingEntries(t *testing.T) {
	m := NewManager()
	if err := m.Register("t", Schedule{Times: []core.Time{10, 20, 30}}); err != nil {
		t.Fatal(err)
	}
	// A live completion at 21 supersedes the pending syncs at 10 and 20.
	if err := m.RecordSync("t", 21); err != nil {
		t.Fatal(err)
	}
	rs := m.StateFor("t", 22, 0)
	if rs.LastSync != 21 {
		t.Fatalf("LastSync = %v, want 21", rs.LastSync)
	}
	if len(rs.NextSyncs) != 1 || rs.NextSyncs[0] != 30 {
		t.Fatalf("NextSyncs = %v, want [30]", rs.NextSyncs)
	}
	if s, ok := m.Staleness("t", 25); !ok || s != 4 {
		t.Fatalf("Staleness = %v,%v, want 4,true", s, ok)
	}
	// Recording the same instant again is a no-op; going backwards errors.
	if err := m.RecordSync("t", 21); err != nil {
		t.Fatalf("idempotent re-record: %v", err)
	}
	if err := m.RecordSync("t", 20); err == nil {
		t.Fatal("RecordSync before last completion should error")
	}
	if err := m.RecordSync("missing", 1); err == nil {
		t.Fatal("RecordSync on unregistered table should error")
	}
}

func TestRescheduleReplacesFuture(t *testing.T) {
	m := NewManager()
	if err := m.Register("t", Schedule{Times: []core.Time{5, 10, 15}}); err != nil {
		t.Fatal(err)
	}
	m.Advance(6) // the sync at 5 completes
	if err := m.Reschedule("t", []core.Time{8, 11}); err != nil {
		t.Fatal(err)
	}
	rs := m.StateFor("t", 6, 0)
	if rs.LastSync != 5 {
		t.Fatalf("LastSync = %v, want 5", rs.LastSync)
	}
	if len(rs.NextSyncs) != 2 || rs.NextSyncs[0] != 8 || rs.NextSyncs[1] != 11 {
		t.Fatalf("NextSyncs = %v, want [8 11]", rs.NextSyncs)
	}
	// A future entry at or before the last completion is rejected.
	if err := m.Reschedule("t", []core.Time{5}); err == nil {
		t.Fatal("Reschedule at last completed sync should error")
	}
	if err := m.Reschedule("t", []core.Time{9, 9}); err == nil {
		t.Fatal("non-ascending reschedule should error")
	}
	if err := m.Reschedule("missing", []core.Time{9}); err == nil {
		t.Fatal("Reschedule on unregistered table should error")
	}
	// Clearing the future entirely is allowed.
	if err := m.Reschedule("t", nil); err != nil {
		t.Fatal(err)
	}
	if rs := m.StateFor("t", 6, 0); len(rs.NextSyncs) != 0 {
		t.Fatalf("NextSyncs after clearing = %v, want none", rs.NextSyncs)
	}
}

func TestUnregister(t *testing.T) {
	m := NewManager()
	if err := m.Register("t", Schedule{Times: []core.Time{1}}); err != nil {
		t.Fatal(err)
	}
	if !m.Unregister("t") {
		t.Fatal("Unregister should report the table existed")
	}
	if m.Replicated("t") {
		t.Fatal("table still replicated after Unregister")
	}
	if m.StateFor("t", 2, 0) != nil {
		t.Fatal("StateFor after Unregister should be nil")
	}
	if m.Unregister("t") {
		t.Fatal("second Unregister should report absence")
	}
	// Re-registering after demotion is allowed (a later promotion).
	if err := m.Register("t", Schedule{}); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialDeterministicInSeed(t *testing.T) {
	a, err := Exponential(5, 42, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exponential(5, 42, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Times) == 0 || len(a.Times) != len(b.Times) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a.Times), len(b.Times))
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a.Times[i], b.Times[i])
		}
	}
	c, err := Exponential(5, 43, 1000)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Times) == len(c.Times)
	if same {
		for i := range a.Times {
			if a.Times[i] != c.Times[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestExponentialMeanConvergence(t *testing.T) {
	const mean = 4.0
	s, err := Exponential(mean, 7, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Times) < 1000 {
		t.Fatalf("only %d syncs over the horizon; want a large sample", len(s.Times))
	}
	var sum float64
	prev := core.Time(0)
	for _, at := range s.Times {
		sum += at - prev
		prev = at
	}
	got := sum / float64(len(s.Times))
	if math.Abs(got-mean)/mean > .05 {
		t.Fatalf("mean inter-sync gap %.3f, want %.3f ±5%%", got, mean)
	}
}

func TestExponentialRejectsNonPositive(t *testing.T) {
	if _, err := Exponential(0, 1, 100); err == nil {
		t.Fatal("zero mean should error")
	}
	if _, err := Exponential(-2, 1, 100); err == nil {
		t.Fatal("negative mean should error")
	}
	if _, err := Exponential(5, 1, 0); err == nil {
		t.Fatal("zero horizon should error")
	}
	if _, err := Exponential(5, 1, -10); err == nil {
		t.Fatal("negative horizon should error")
	}
}
