package replication

import (
	"math"
	"testing"

	"ivdss/internal/core"
)

func TestPeriodic(t *testing.T) {
	s, err := Periodic(10, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Time{5, 15, 25, 35}
	if len(s.Times) != len(want) {
		t.Fatalf("times = %v", s.Times)
	}
	for i := range want {
		if s.Times[i] != want[i] {
			t.Errorf("times = %v, want %v", s.Times, want)
		}
	}
	if _, err := Periodic(0, 0, 10); err == nil {
		t.Error("zero period accepted")
	}
}

func TestExponentialScheduleProperties(t *testing.T) {
	s, err := Exponential(5, 42, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Times) == 0 {
		t.Fatal("empty schedule")
	}
	last := s.Times[len(s.Times)-1]
	if last > 10000 {
		t.Errorf("schedule overran horizon: %v", last)
	}
	// Mean gap should approximate the configured mean.
	meanGap := last / float64(len(s.Times))
	if math.Abs(meanGap-5) > 1 {
		t.Errorf("mean gap = %v, want ≈5", meanGap)
	}
	// Determinism.
	s2, _ := Exponential(5, 42, 10000)
	if len(s2.Times) != len(s.Times) || s2.Times[0] != s.Times[0] {
		t.Error("exponential schedule not deterministic")
	}
	if _, err := Exponential(-1, 1, 10); err == nil {
		t.Error("negative mean accepted")
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{Times: []core.Time{1, 1}}).Validate(); err == nil {
		t.Error("non-ascending schedule accepted")
	}
}

func TestRegisterErrors(t *testing.T) {
	m := NewManager()
	if err := m.Register("", Schedule{}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := m.Register("t", Schedule{Times: []core.Time{2, 1}}); err == nil {
		t.Error("bad schedule accepted")
	}
	if err := m.Register("t", Schedule{Times: []core.Time{1}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("t", Schedule{Times: []core.Time{1}}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if !m.Replicated("t") || m.Replicated("other") {
		t.Error("Replicated wrong")
	}
}

func TestAdvanceOrderAndCallback(t *testing.T) {
	m := NewManager()
	var seen []SyncEvent
	m.OnSync(func(ev SyncEvent) { seen = append(seen, ev) })
	mustRegister(t, m, "b", []core.Time{2, 8})
	mustRegister(t, m, "a", []core.Time{2, 5})

	events := m.Advance(6)
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	// Time order; ties broken by table ID.
	want := []SyncEvent{{"a", 2}, {"b", 2}, {"a", 5}}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
	if len(seen) != 3 {
		t.Errorf("callback saw %d events", len(seen))
	}

	// Second advance only applies the remainder.
	events = m.Advance(10)
	if len(events) != 1 || events[0] != (SyncEvent{"b", 8}) {
		t.Errorf("second advance = %v", events)
	}
	if got := m.Advance(100); len(got) != 0 {
		t.Errorf("third advance = %v", got)
	}
}

func TestNextSyncAt(t *testing.T) {
	m := NewManager()
	if _, ok := m.NextSyncAt(); ok {
		t.Error("empty manager reported a next sync")
	}
	mustRegister(t, m, "a", []core.Time{5, 9})
	mustRegister(t, m, "b", []core.Time{7})
	if at, ok := m.NextSyncAt(); !ok || at != 5 {
		t.Errorf("next = %v, %v", at, ok)
	}
	m.Advance(6)
	if at, ok := m.NextSyncAt(); !ok || at != 7 {
		t.Errorf("next after advance = %v, %v", at, ok)
	}
	m.Advance(100)
	if _, ok := m.NextSyncAt(); ok {
		t.Error("exhausted manager reported a next sync")
	}
}

func TestStateFor(t *testing.T) {
	m := NewManager()
	mustRegister(t, m, "a", []core.Time{5, 9, 14, 30})

	rs := m.StateFor("a", 10, 10)
	if rs.LastSync != 9 {
		t.Errorf("LastSync = %v, want 9", rs.LastSync)
	}
	if len(rs.NextSyncs) != 1 || rs.NextSyncs[0] != 14 {
		t.Errorf("NextSyncs = %v, want [14] (30 beyond horizon)", rs.NextSyncs)
	}

	// Unbounded horizon includes everything.
	rs = m.StateFor("a", 10, 0)
	if len(rs.NextSyncs) != 2 {
		t.Errorf("NextSyncs = %v, want [14 30]", rs.NextSyncs)
	}

	if m.StateFor("missing", 10, 0) != nil {
		t.Error("state for unreplicated table not nil")
	}
}

func TestStateForNeverSynced(t *testing.T) {
	m := NewManager()
	mustRegister(t, m, "a", []core.Time{20, 40})
	rs := m.StateFor("a", 10, 0)
	// Encoded so the planner sees no usable version before t=20 and a
	// first version exactly at 20.
	ts := core.TableState{ID: "a", Site: 1, Replica: rs}
	if err := ts.Validate(); err != nil {
		t.Fatalf("encoded state invalid: %v", err)
	}
	if rs.LastSync != 20 {
		t.Errorf("LastSync = %v, want 20 (first future sync)", rs.LastSync)
	}
	if len(rs.NextSyncs) != 1 || rs.NextSyncs[0] != 40 {
		t.Errorf("NextSyncs = %v, want [40]", rs.NextSyncs)
	}
}

func TestStateForNoSyncsAtAll(t *testing.T) {
	m := NewManager()
	mustRegister(t, m, "a", nil)
	rs := m.StateFor("a", 10, 0)
	if rs == nil {
		t.Fatal("nil state for registered table")
	}
	if rs.LastSync <= 10 {
		t.Errorf("LastSync = %v should be unusable (far future)", rs.LastSync)
	}
}

func TestStaleness(t *testing.T) {
	m := NewManager()
	mustRegister(t, m, "a", []core.Time{5, 15})
	if s, ok := m.Staleness("a", 12); !ok || s != 7 {
		t.Errorf("staleness = %v, %v; want 7", s, ok)
	}
	if _, ok := m.Staleness("a", 3); ok {
		t.Error("staleness before first sync should be unavailable")
	}
	if _, ok := m.Staleness("missing", 10); ok {
		t.Error("staleness for unreplicated table should be unavailable")
	}
}

func TestQoSViolations(t *testing.T) {
	m := NewManager()
	mustRegister(t, m, "fresh", []core.Time{95})
	mustRegister(t, m, "stale", []core.Time{10})
	got := m.QoSViolations(100, 30)
	if len(got) != 1 || got[0] != "stale" {
		t.Errorf("violations = %v", got)
	}
}

func TestTablesSorted(t *testing.T) {
	m := NewManager()
	mustRegister(t, m, "c", nil)
	mustRegister(t, m, "a", nil)
	mustRegister(t, m, "b", nil)
	ids := m.Tables()
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Errorf("tables = %v", ids)
	}
}

func mustRegister(t *testing.T, m *Manager, id core.TableID, times []core.Time) {
	t.Helper()
	if err := m.Register(id, Schedule{Times: times}); err != nil {
		t.Fatal(err)
	}
}
