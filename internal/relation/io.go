package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes the table: a header row of "name:type" cells, then
// one row per tuple. Dates serialize as YYYY-MM-DD, floats with full
// precision, so ReadCSV round-trips exactly.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema.Arity())
	for i, c := range t.Schema.Cols {
		header[i] = c.Name + ":" + c.Type.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation: write header: %w", err)
	}
	record := make([]string, t.Schema.Arity())
	for ri, row := range t.Rows {
		for i, v := range row {
			switch v.T {
			case Float:
				record[i] = strconv.FormatFloat(v.F, 'g', -1, 64)
			default:
				record[i] = v.String()
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("relation: write row %d: %w", ri, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table written by WriteCSV (or hand-authored in the same
// format) and validates every cell against the header's declared types.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read header: %w", err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		idx := strings.LastIndex(h, ":")
		if idx <= 0 || idx == len(h)-1 {
			return nil, fmt.Errorf("relation: header cell %q is not name:type", h)
		}
		colName, typeName := h[:idx], h[idx+1:]
		var typ Type
		switch typeName {
		case "int":
			typ = Int
		case "float":
			typ = Float
		case "string":
			typ = Str
		case "date":
			typ = Date
		default:
			return nil, fmt.Errorf("relation: unknown column type %q", typeName)
		}
		cols[i] = Column{Name: colName, Type: typ}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := NewTable(name, schema)
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", line, err)
		}
		if len(record) != len(cols) {
			return nil, fmt.Errorf("relation: line %d has %d cells, want %d", line, len(record), len(cols))
		}
		row := make(Row, len(cols))
		for i, cell := range record {
			v, err := parseCell(cell, cols[i].Type)
			if err != nil {
				return nil, fmt.Errorf("relation: line %d column %s: %w", line, cols[i].Name, err)
			}
			row[i] = v
		}
		out.Rows = append(out.Rows, row)
	}
}

func parseCell(cell string, typ Type) (Value, error) {
	switch typ {
	case Int:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Value{}, err
		}
		return IntVal(n), nil
	case Float:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Value{}, err
		}
		return FloatVal(f), nil
	case Str:
		return StrVal(cell), nil
	case Date:
		return ParseDate(cell)
	default:
		return Value{}, fmt.Errorf("unknown type %d", int(typ))
	}
}
