package relation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestCSVRoundTrip(t *testing.T) {
	tbl := NewTable("mixed", MustSchema(
		Column{"id", Int}, Column{"price", Float}, Column{"note", Str}, Column{"day", Date},
	))
	tbl.MustInsert(Row{IntVal(-5), FloatVal(3.14159265358979), StrVal("plain"), DateOf(1996, 3, 13)})
	tbl.MustInsert(Row{IntVal(0), FloatVal(0), StrVal("with,comma and \"quotes\""), DateOf(2026, 7, 6)})
	tbl.MustInsert(Row{IntVal(1 << 40), FloatVal(-1e-9), StrVal(""), DateOf(1970, 1, 1)})

	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("mixed", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() || back.Schema.Arity() != tbl.Schema.Arity() {
		t.Fatalf("shape changed: %d×%d", back.NumRows(), back.Schema.Arity())
	}
	for i := range tbl.Rows {
		for j := range tbl.Rows[i] {
			if !Equal(tbl.Rows[i][j], back.Rows[i][j]) {
				t.Errorf("cell [%d][%d]: %v != %v", i, j, tbl.Rows[i][j], back.Rows[i][j])
			}
		}
	}
	for j, c := range tbl.Schema.Cols {
		if back.Schema.Cols[j] != c {
			t.Errorf("column %d: %v != %v", j, back.Schema.Cols[j], c)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "justaname\n1\n"},
		{"unknown type", "a:blob\n1\n"},
		{"arity mismatch", "a:int,b:int\n1\n"},
		{"bad int", "a:int\nnope\n"},
		{"bad float", "a:float\nnope\n"},
		{"bad date", "a:date\n2020-13-45\n"},
		{"duplicate columns", "a:int,a:int\n1,2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV("t", strings.NewReader(tc.in)); err == nil {
				t.Errorf("input %q accepted", tc.in)
			}
		})
	}
}

func TestReadCSVHandAuthored(t *testing.T) {
	in := "c_id:int,c_name:string,c_since:date\n" +
		"1,ada,2020-01-15\n" +
		"2,grace,2021-06-30\n"
	tbl, err := ReadCSV("customers", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 || tbl.Rows[1][1].S != "grace" {
		t.Errorf("rows = %v", tbl.Rows)
	}
	if tbl.Rows[0][2].String() != "2020-01-15" {
		t.Errorf("date = %v", tbl.Rows[0][2])
	}
}

// TestCSVFloatPrecisionProperty: floats survive the round trip bit-exactly.
func TestCSVFloatPrecisionProperty(t *testing.T) {
	f := func(vals []float64) bool {
		tbl := NewTable("f", MustSchema(Column{"v", Float}))
		for _, v := range vals {
			if v != v { // skip NaN: not representable in the engine
				continue
			}
			tbl.MustInsert(Row{FloatVal(v)})
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV("f", &buf)
		if err != nil {
			return false
		}
		if back.NumRows() != tbl.NumRows() {
			return false
		}
		for i := range tbl.Rows {
			if back.Rows[i][0].F != tbl.Rows[i][0].F {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
