package relation

import "fmt"

// BatchRows is the number of rows a columnar execution batch holds. It is
// sized so one batch of vectors (a few typed slices of this length) stays
// comfortably inside L2 while still amortizing per-batch bookkeeping —
// the 1–4k sweet spot for vectorized interpreters.
const BatchRows = 2048

// Vector is one column of values stored contiguously by type: the
// column-vector representation batch execution runs over. Exactly one
// payload slice is populated, selected by T (Date shares Ints, storing
// days since the epoch just like Value does).
type Vector struct {
	T      Type
	Ints   []int64   // Int and Date payload
	Floats []float64 // Float payload
	Strs   []string  // Str payload
}

// NewVector returns an empty vector of the given type with room for
// capHint values.
func NewVector(t Type, capHint int) Vector {
	v := Vector{T: t}
	switch t {
	case Int, Date:
		v.Ints = make([]int64, 0, capHint)
	case Float:
		v.Floats = make([]float64, 0, capHint)
	case Str:
		v.Strs = make([]string, 0, capHint)
	}
	return v
}

// Len returns the number of values in the vector.
func (v *Vector) Len() int {
	switch v.T {
	case Int, Date:
		return len(v.Ints)
	case Float:
		return len(v.Floats)
	case Str:
		return len(v.Strs)
	default:
		return 0
	}
}

// Value materializes the i-th value of the vector.
func (v *Vector) Value(i int) Value {
	switch v.T {
	case Int:
		return Value{T: Int, I: v.Ints[i]}
	case Date:
		return Value{T: Date, I: v.Ints[i]}
	case Float:
		return Value{T: Float, F: v.Floats[i]}
	case Str:
		return Value{T: Str, S: v.Strs[i]}
	default:
		return Value{}
	}
}

// Append adds a value; the caller guarantees x matches the vector type
// (Int and Date payloads are interchangeable at the storage level, so a
// zero Value of the right type appends as zero).
func (v *Vector) Append(x Value) {
	switch v.T {
	case Int, Date:
		v.Ints = append(v.Ints, x.I)
	case Float:
		v.Floats = append(v.Floats, x.F)
	case Str:
		v.Strs = append(v.Strs, x.S)
	}
}

// AppendFrom adds src's i-th value without materializing a Value.
func (v *Vector) AppendFrom(src *Vector, i int) {
	switch v.T {
	case Int, Date:
		v.Ints = append(v.Ints, src.Ints[i])
	case Float:
		v.Floats = append(v.Floats, src.Floats[i])
	case Str:
		v.Strs = append(v.Strs, src.Strs[i])
	}
}

// ColTable is a table in columnar form: one typed Vector per schema
// column, all of length N. It is the execution-time representation the
// bytecode VM and the columnar operators below work on; base tables stay
// row-major and are converted (and cached) at the edge.
type ColTable struct {
	Name   string
	Schema Schema
	N      int
	Cols   []Vector
}

// NewColTable returns an empty columnar table with per-column capacity
// capHint.
func NewColTable(name string, schema Schema, capHint int) *ColTable {
	cols := make([]Vector, schema.Arity())
	for i, c := range schema.Cols {
		cols[i] = NewVector(c.Type, capHint)
	}
	return &ColTable{Name: name, Schema: schema, Cols: cols}
}

// Columnar converts a row-major table to columnar form. Every cell must
// match its declared column type; tables built through Insert always do.
func Columnar(t *Table) (*ColTable, error) {
	out := NewColTable(t.Name, t.Schema, len(t.Rows))
	for ci := range t.Schema.Cols {
		want := t.Schema.Cols[ci].Type
		v := &out.Cols[ci]
		for ri, r := range t.Rows {
			cell := r[ci]
			if cell.T != want {
				return nil, fmt.Errorf("relation: columnar %s: row %d column %s wants %s, got %s",
					t.Name, ri, t.Schema.Cols[ci].Name, want, cell.T)
			}
			v.Append(cell)
		}
	}
	out.N = len(t.Rows)
	return out, nil
}

// ToTable converts back to row-major form.
func (c *ColTable) ToTable() *Table {
	out := &Table{Name: c.Name, Schema: c.Schema, Rows: make([]Row, c.N)}
	for ri := 0; ri < c.N; ri++ {
		row := make(Row, len(c.Cols))
		for ci := range c.Cols {
			row[ci] = c.Cols[ci].Value(ri)
		}
		out.Rows[ri] = row
	}
	return out
}

// AppendRowFrom appends src's i-th row (src must share c's column types
// positionally).
func (c *ColTable) AppendRowFrom(src *ColTable, i int) {
	for ci := range c.Cols {
		c.Cols[ci].AppendFrom(&src.Cols[ci], i)
	}
	c.N++
}

// GatherInto appends the rows of src at positions base+sel[j] for every
// selection entry, column by column — the batch-filter output path.
func (c *ColTable) GatherInto(src *ColTable, base int, sel []int32) {
	for ci := range c.Cols {
		dst, sc := &c.Cols[ci], &src.Cols[ci]
		switch dst.T {
		case Int, Date:
			in := sc.Ints[base:]
			for _, j := range sel {
				dst.Ints = append(dst.Ints, in[j])
			}
		case Float:
			in := sc.Floats[base:]
			for _, j := range sel {
				dst.Floats = append(dst.Floats, in[j])
			}
		case Str:
			in := sc.Strs[base:]
			for _, j := range sel {
				dst.Strs = append(dst.Strs, in[j])
			}
		}
	}
	c.N += len(sel)
}
