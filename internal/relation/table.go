package relation

import (
	"fmt"
	"strings"
)

// Column is one named, typed attribute of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Column names are matched
// case-insensitively, following SQL convention.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema and validates that column names are non-empty
// and unique (case-insensitively).
func NewSchema(cols ...Column) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		name := strings.ToLower(c.Name)
		if name == "" {
			return Schema{}, fmt.Errorf("relation: empty column name")
		}
		if seen[name] {
			return Schema{}, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		if c.Type < Int || c.Type > Date {
			return Schema{}, fmt.Errorf("relation: column %q has invalid type %d", c.Name, int(c.Type))
		}
		seen[name] = true
	}
	return Schema{Cols: cols}, nil
}

// MustSchema is NewSchema for static schema literals; it panics on error.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColIndex returns the position of the named column, or -1 if absent.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Cols) }

// String renders "name type, name type, ...".
func (s Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return strings.Join(parts, ", ")
}

// Row is one tuple; its cells align positionally with a schema.
type Row []Value

// Clone returns an independent copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is a named, schema-ful collection of rows.
type Table struct {
	Name   string
	Schema Schema
	Rows   []Row
}

// NewTable returns an empty table.
func NewTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// Insert appends a row after checking arity and types.
func (t *Table) Insert(r Row) error {
	if len(r) != t.Schema.Arity() {
		return fmt.Errorf("relation: table %s: row arity %d, want %d", t.Name, len(r), t.Schema.Arity())
	}
	for i, v := range r {
		if v.T != t.Schema.Cols[i].Type {
			return fmt.Errorf("relation: table %s: column %s wants %s, got %s",
				t.Name, t.Schema.Cols[i].Name, t.Schema.Cols[i].Type, v.T)
		}
	}
	t.Rows = append(t.Rows, r)
	return nil
}

// MustInsert inserts and panics on a type error; for generators whose rows
// are correct by construction.
func (t *Table) MustInsert(r Row) {
	if err := t.Insert(r); err != nil {
		panic(err)
	}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.Rows) }

// Clone returns a snapshot copy of the table: fresh row slice and fresh
// rows, sharing only immutable Values. It is how the replication manager
// materializes replica versions.
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name, Schema: t.Schema, Rows: make([]Row, len(t.Rows))}
	for i, r := range t.Rows {
		out.Rows[i] = r.Clone()
	}
	return out
}

// SizeBytes estimates the in-memory payload size of the table, used by cost
// models that charge by data volume.
func (t *Table) SizeBytes() int64 {
	var size int64
	for _, r := range t.Rows {
		for _, v := range r {
			switch v.T {
			case Str:
				size += int64(len(v.S))
			default:
				size += 8
			}
		}
	}
	return size
}
