package relation

import (
	"context"
	"fmt"
	"math"
)

// colTicker amortizes context checks over columnar operator loops, at the
// same cadence as the row-major operators (see HashJoinContext).
type colTicker struct {
	ctx context.Context
	n   int
}

func (t *colTicker) tick() error {
	t.n++
	if t.n%4096 != 0 {
		return nil
	}
	if t.ctx.Err() != nil {
		return context.Cause(t.ctx)
	}
	return nil
}

// appendColKey appends the composite key bytes for row i over the given
// columns — byte-identical to the row-major joinKey, so columnar and
// row-major operators group and join identically (numerically equal
// Int/Float cells share a key, Dates stay distinct from numbers).
func appendColKey(b []byte, t *ColTable, i int, cols []int) []byte {
	for _, c := range cols {
		v := &t.Cols[c]
		switch v.T {
		case Int:
			bits := math.Float64bits(float64(v.Ints[i]))
			b = append(b, 'n')
			for shift := 56; shift >= 0; shift -= 8 {
				b = append(b, byte(bits>>shift))
			}
		case Float:
			bits := math.Float64bits(v.Floats[i])
			b = append(b, 'n')
			for shift := 56; shift >= 0; shift -= 8 {
				b = append(b, byte(bits>>shift))
			}
		case Date:
			b = append(b, 'd')
			u := uint64(v.Ints[i])
			for shift := 56; shift >= 0; shift -= 8 {
				b = append(b, byte(u>>shift))
			}
		case Str:
			s := v.Strs[i]
			b = append(b, 's')
			n := uint64(len(s))
			for shift := 56; shift >= 0; shift -= 8 {
				b = append(b, byte(n>>shift))
			}
			b = append(b, s...)
		default:
			b = append(b, '?')
		}
	}
	return b
}

// JoinIndex is a reusable hash-join build: key bytes to row positions of
// the indexed (build-side) table. Because it depends only on the build
// input's vectors and key positions, a micro-batch workload that joins
// the same replica snapshot repeatedly can build it once and reuse it
// (sqlmini's ExecCache does exactly that).
type JoinIndex struct {
	N      int // rows indexed, for cache staleness checks
	groups map[string][]int32
}

// BuildJoinIndex indexes t's rows by the key columns.
func BuildJoinIndex(ctx context.Context, t *ColTable, keys []int) (*JoinIndex, error) {
	idx := &JoinIndex{N: t.N, groups: make(map[string][]int32, t.N)}
	tk := colTicker{ctx: ctx}
	var buf []byte
	for i := 0; i < t.N; i++ {
		if err := tk.tick(); err != nil {
			return nil, err
		}
		buf = appendColKey(buf[:0], t, i, keys)
		idx.groups[string(buf)] = append(idx.groups[string(buf)], int32(i))
	}
	return idx, nil
}

// ColHashJoinContext equijoins l and r in columnar form with the same
// semantics as the row-major HashJoinContext: build on the smaller input
// (left on ties), probe in input order, matches emitted in build insertion
// order, output columns l's then r's.
func ColHashJoinContext(ctx context.Context, l, r *ColTable, lk, rk []int) (*ColTable, error) {
	buildLeft := r.N >= l.N
	var idx *JoinIndex
	var err error
	if buildLeft {
		idx, err = BuildJoinIndex(ctx, l, lk)
	} else {
		idx, err = BuildJoinIndex(ctx, r, rk)
	}
	if err != nil {
		return nil, err
	}
	return ColHashJoinIndexed(ctx, l, r, lk, rk, buildLeft, idx)
}

// ColHashJoinIndexed is ColHashJoinContext with the build side chosen by
// the caller and its index possibly prebuilt (idx indexes l when
// buildLeft, r otherwise). Callers must pick the side by the same
// smaller-input rule to keep output order identical to the row-major
// operator.
func ColHashJoinIndexed(ctx context.Context, l, r *ColTable, lk, rk []int, buildLeft bool, idx *JoinIndex) (*ColTable, error) {
	if len(lk) != len(rk) || len(lk) == 0 {
		return nil, fmt.Errorf("relation: hash join needs matching non-empty key lists, got %d and %d", len(lk), len(rk))
	}
	for _, c := range lk {
		if c < 0 || c >= l.Schema.Arity() {
			return nil, fmt.Errorf("relation: join key %d out of range for %s", c, l.Name)
		}
	}
	for _, c := range rk {
		if c < 0 || c >= r.Schema.Arity() {
			return nil, fmt.Errorf("relation: join key %d out of range for %s", c, r.Name)
		}
	}

	probe, pk := r, rk
	if !buildLeft {
		probe, pk = l, lk
	}

	// Collect the matching (left row, right row) pairs first, then gather
	// per column in typed loops: the pair lists are two int32 slices, far
	// cheaper than a row-at-a-time emit.
	tk := colTicker{ctx: ctx}
	tk.n = idx.N // index build already advanced the cadence
	var lrows, rrows []int32
	var buf []byte
	for p := 0; p < probe.N; p++ {
		if err := tk.tick(); err != nil {
			return nil, err
		}
		buf = appendColKey(buf[:0], probe, p, pk)
		for _, b := range idx.groups[string(buf)] {
			if err := tk.tick(); err != nil {
				return nil, err
			}
			if buildLeft {
				lrows = append(lrows, b)
				rrows = append(rrows, int32(p))
			} else {
				lrows = append(lrows, int32(p))
				rrows = append(rrows, b)
			}
		}
	}

	outSchema := Schema{Cols: make([]Column, 0, l.Schema.Arity()+r.Schema.Arity())}
	outSchema.Cols = append(outSchema.Cols, l.Schema.Cols...)
	outSchema.Cols = append(outSchema.Cols, r.Schema.Cols...)
	out := NewColTable(l.Name+"⨝"+r.Name, outSchema, len(lrows))
	gatherCols(out.Cols[:l.Schema.Arity()], l, lrows)
	gatherCols(out.Cols[l.Schema.Arity():], r, rrows)
	out.N = len(lrows)
	return out, nil
}

func gatherCols(dst []Vector, src *ColTable, rows []int32) {
	for ci := range dst {
		d, s := &dst[ci], &src.Cols[ci]
		switch d.T {
		case Int, Date:
			for _, i := range rows {
				d.Ints = append(d.Ints, s.Ints[i])
			}
		case Float:
			for _, i := range rows {
				d.Floats = append(d.Floats, s.Floats[i])
			}
		case Str:
			for _, i := range rows {
				d.Strs = append(d.Strs, s.Strs[i])
			}
		}
	}
}

// ColCrossJoinContext is the columnar cross product, emitting rows in the
// same left-major order as the row-major crossJoin. The caller guards
// against blow-up before calling.
func ColCrossJoinContext(ctx context.Context, l, r *ColTable) (*ColTable, error) {
	outSchema := Schema{Cols: make([]Column, 0, l.Schema.Arity()+r.Schema.Arity())}
	outSchema.Cols = append(outSchema.Cols, l.Schema.Cols...)
	outSchema.Cols = append(outSchema.Cols, r.Schema.Cols...)
	total := l.N * r.N
	out := NewColTable(l.Name+"×"+r.Name, outSchema, total)
	tk := colTicker{ctx: ctx}
	lrows := make([]int32, 0, total)
	rrows := make([]int32, 0, total)
	for li := 0; li < l.N; li++ {
		for ri := 0; ri < r.N; ri++ {
			if err := tk.tick(); err != nil {
				return nil, err
			}
			lrows = append(lrows, int32(li))
			rrows = append(rrows, int32(ri))
		}
	}
	gatherCols(out.Cols[:l.Schema.Arity()], l, lrows)
	gatherCols(out.Cols[l.Schema.Arity():], r, rrows)
	out.N = total
	return out, nil
}

// ColAggregateContext groups t by the groupBy columns and computes the
// aggregates, mirroring the row-major Aggregate exactly: first-seen group
// order, float accumulation in row order, Count/CountDistinct as Int,
// Sum/Avg as Float, Min/Max keeping the input column type, and a single
// zero-valued row for a global aggregate over an empty input.
func ColAggregateContext(ctx context.Context, t *ColTable, groupBy []int, aggs []AggSpec) (*ColTable, error) {
	for _, c := range groupBy {
		if c < 0 || c >= t.Schema.Arity() {
			return nil, fmt.Errorf("relation: group-by column %d out of range", c)
		}
	}
	for _, a := range aggs {
		if a.Fn != Count && (a.Col < 0 || a.Col >= t.Schema.Arity()) {
			return nil, fmt.Errorf("relation: aggregate column %d out of range", a.Col)
		}
	}

	outCols := make([]Column, 0, len(groupBy)+len(aggs))
	for _, c := range groupBy {
		outCols = append(outCols, t.Schema.Cols[c])
	}
	for _, a := range aggs {
		typ := Float
		if a.Fn == Count || a.Fn == CountDistinct {
			typ = Int
		}
		if (a.Fn == Min || a.Fn == Max) && a.Col >= 0 && a.Col < t.Schema.Arity() {
			typ = t.Schema.Cols[a.Col].Type
		}
		outCols = append(outCols, Column{Name: a.As, Type: typ})
	}

	// Pass 1: assign each row its group id in first-seen order.
	tk := colTicker{ctx: ctx}
	ids := make(map[string]int32, 64)
	gids := make([]int32, t.N)
	var firstRow []int32
	var buf []byte
	for i := 0; i < t.N; i++ {
		if err := tk.tick(); err != nil {
			return nil, err
		}
		buf = appendColKey(buf[:0], t, i, groupBy)
		id, ok := ids[string(buf)]
		if !ok {
			id = int32(len(firstRow))
			ids[string(buf)] = id
			firstRow = append(firstRow, int32(i))
		}
		gids[i] = id
	}
	ngroups := len(firstRow)

	out := NewColTable(t.Name, Schema{Cols: outCols}, ngroups)
	if ngroups == 0 && len(groupBy) == 0 {
		// Global aggregate over an empty input still yields one row.
		for i, a := range aggs {
			v := &out.Cols[len(groupBy)+i]
			switch a.Fn {
			case Count, CountDistinct:
				v.Append(IntVal(0))
			case Min, Max:
				v.Append(Value{T: v.T})
			default:
				v.Append(FloatVal(0))
			}
		}
		out.N = 1
		return out, nil
	}

	// Group-key output columns: the first-seen row's values.
	for gi, c := range groupBy {
		dst, src := &out.Cols[gi], &t.Cols[c]
		for _, fr := range firstRow {
			dst.AppendFrom(src, int(fr))
		}
	}

	// Pass 2: one accumulation sweep per aggregate, column-major.
	for ai, a := range aggs {
		dst := &out.Cols[len(groupBy)+ai]
		switch a.Fn {
		case Count:
			counts := make([]int64, ngroups)
			for i := 0; i < t.N; i++ {
				counts[gids[i]]++
			}
			for _, n := range counts {
				dst.Ints = append(dst.Ints, n)
			}
		case CountDistinct:
			distinct := make([]map[any]bool, ngroups)
			src := &t.Cols[a.Col]
			for i := 0; i < t.N; i++ {
				g := gids[i]
				if distinct[g] == nil {
					distinct[g] = make(map[any]bool)
				}
				distinct[g][src.Value(i).Key()] = true
			}
			for _, m := range distinct {
				dst.Ints = append(dst.Ints, int64(len(m)))
			}
		case Sum, Avg:
			src := &t.Cols[a.Col]
			if src.T != Int && src.T != Float {
				if t.N > 0 {
					return nil, fmt.Errorf("relation: %s over non-numeric column %s", a.Fn, t.Schema.Cols[a.Col].Name)
				}
			}
			sums := make([]float64, ngroups)
			counts := make([]int64, ngroups)
			if src.T == Int {
				for i := 0; i < t.N; i++ {
					sums[gids[i]] += float64(src.Ints[i])
					counts[gids[i]]++
				}
			} else {
				for i := 0; i < t.N; i++ {
					sums[gids[i]] += src.Floats[i]
					counts[gids[i]]++
				}
			}
			if a.Fn == Avg {
				for g := range sums {
					dst.Floats = append(dst.Floats, sums[g]/float64(counts[g]))
				}
			} else {
				dst.Floats = append(dst.Floats, sums...)
			}
		case Min, Max:
			src := &t.Cols[a.Col]
			best := make([]int32, ngroups)
			for g := range best {
				best[g] = -1
			}
			for i := 0; i < t.N; i++ {
				g := gids[i]
				if best[g] < 0 {
					best[g] = int32(i)
					continue
				}
				c, err := colCompare(src, i, int(best[g]))
				if err != nil {
					return nil, err
				}
				if (a.Fn == Min && c < 0) || (a.Fn == Max && c > 0) {
					best[g] = int32(i)
				}
			}
			for _, b := range best {
				dst.AppendFrom(src, int(b))
			}
		default:
			return nil, fmt.Errorf("relation: unknown aggregate %d", int(a.Fn))
		}
	}
	out.N = ngroups
	return out, nil
}

// colCompare orders two cells of one vector (same type, so the only
// Compare paths possible are numeric/string/date against themselves).
func colCompare(v *Vector, i, j int) (int, error) {
	switch v.T {
	case Int:
		return compareFloat(float64(v.Ints[i]), float64(v.Ints[j])), nil
	case Float:
		return compareFloat(v.Floats[i], v.Floats[j]), nil
	case Date:
		return compareInt(v.Ints[i], v.Ints[j]), nil
	case Str:
		switch {
		case v.Strs[i] < v.Strs[j]:
			return -1, nil
		case v.Strs[i] > v.Strs[j]:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, typeMismatch(v.Value(i), v.Value(j))
	}
}
