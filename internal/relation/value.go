// Package relation is a small in-memory relational engine: typed values,
// schemas, tables, and the physical operators (filter, project, hash join,
// aggregation, sort) the federation layer executes queries with.
//
// It is the substrate standing in for the DBMSes of the paper's testbed:
// remote servers host base relation.Tables, the DSS hosts replica
// snapshots, and internal/sqlmini compiles a SQL subset onto these
// operators.
package relation

import (
	"fmt"
	"strings"
	"time"
)

// Type enumerates the column types the engine supports.
type Type int

const (
	// Int is a 64-bit signed integer.
	Int Type = iota + 1
	// Float is a 64-bit IEEE float.
	Float
	// Str is a UTF-8 string.
	Str
	// Date is a calendar day, stored as days since 1970-01-01 (UTC).
	Date
)

// String names the type for error messages and schema dumps.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case Str:
		return "string"
	case Date:
		return "date"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is one typed cell. Exactly one of the payload fields is meaningful,
// selected by T; the zero Value is invalid and only appears before
// initialization.
type Value struct {
	T Type
	I int64   // Int and Date payload
	F float64 // Float payload
	S string  // Str payload
}

// IntVal returns an Int value.
func IntVal(v int64) Value { return Value{T: Int, I: v} }

// FloatVal returns a Float value.
func FloatVal(v float64) Value { return Value{T: Float, F: v} }

// StrVal returns a Str value.
func StrVal(v string) Value { return Value{T: Str, S: v} }

// DateVal returns a Date value from days since the Unix epoch.
func DateVal(days int64) Value { return Value{T: Date, I: days} }

// DateOf returns the Date value for a calendar day.
func DateOf(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return DateVal(t.Unix() / 86400)
}

// ParseDate parses a "YYYY-MM-DD" literal into a Date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Value{}, fmt.Errorf("relation: parse date %q: %w", s, err)
	}
	return DateVal(t.Unix() / 86400), nil
}

// AsFloat converts numeric values to float64 for arithmetic; it reports
// false for strings and dates.
func (v Value) AsFloat() (float64, bool) {
	switch v.T {
	case Int:
		return float64(v.I), true
	case Float:
		return v.F, true
	default:
		return 0, false
	}
}

// String renders the value for output rows.
func (v Value) String() string {
	switch v.T {
	case Int:
		return fmt.Sprintf("%d", v.I)
	case Float:
		return fmt.Sprintf("%.4f", v.F)
	case Str:
		return v.S
	case Date:
		return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
	default:
		return "<invalid>"
	}
}

// Compare orders two values. Int and Float compare numerically with each
// other; Str compares with Str; Date with Date. Comparing incompatible
// types returns an error.
func Compare(a, b Value) (int, error) {
	if af, ok := a.AsFloat(); ok {
		if bf, ok := b.AsFloat(); ok {
			return compareFloat(af, bf), nil
		}
		return 0, typeMismatch(a, b)
	}
	switch {
	case a.T == Str && b.T == Str:
		return strings.Compare(a.S, b.S), nil
	case a.T == Date && b.T == Date:
		return compareInt(a.I, b.I), nil
	default:
		return 0, typeMismatch(a, b)
	}
}

// Equal reports whether two values compare equal; incompatible types are
// simply unequal.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Key returns a map-key representation suitable for hash joins and group
// keys: numerically equal Int and Float values map to the same key.
func (v Value) Key() any {
	switch v.T {
	case Int:
		return float64(v.I)
	case Float:
		return v.F
	case Str:
		return v.S
	case Date:
		return dateKey(v.I)
	default:
		return nil
	}
}

// dateKey keeps Date keys from colliding with numeric keys.
type dateKey int64

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func typeMismatch(a, b Value) error {
	return fmt.Errorf("relation: cannot compare %s with %s", a.T, b.T)
}
