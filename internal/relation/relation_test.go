package relation

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndString(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		want string
	}{
		{"int", IntVal(42), "42"},
		{"float", FloatVal(1.5), "1.5000"},
		{"string", StrVal("hi"), "hi"},
		{"date", DateOf(1996, time.March, 13), "1996-03-13"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1998-12-01")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "1998-12-01" {
		t.Errorf("round trip = %q", v.String())
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("bad date accepted")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Value
		want    int
		wantErr bool
	}{
		{"int lt", IntVal(1), IntVal(2), -1, false},
		{"int eq", IntVal(2), IntVal(2), 0, false},
		{"int float mix", IntVal(2), FloatVal(1.5), 1, false},
		{"float int equal", FloatVal(3), IntVal(3), 0, false},
		{"strings", StrVal("a"), StrVal("b"), -1, false},
		{"dates", DateOf(2020, 1, 2), DateOf(2020, 1, 1), 1, false},
		{"string vs int", StrVal("1"), IntVal(1), 0, true},
		{"date vs int", DateOf(2020, 1, 1), IntVal(5), 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Compare(tt.a, tt.b)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if !tt.wantErr && got != tt.want {
				t.Errorf("Compare = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestEqual(t *testing.T) {
	if !Equal(IntVal(3), FloatVal(3)) {
		t.Error("3 != 3.0")
	}
	if Equal(StrVal("x"), IntVal(0)) {
		t.Error("incompatible types reported equal")
	}
}

func TestValueKeyDistinguishesDates(t *testing.T) {
	if IntVal(5).Key() == DateVal(5).Key() {
		t.Error("date key collides with int key")
	}
	if IntVal(5).Key() != FloatVal(5).Key() {
		t.Error("numerically equal int/float keys differ")
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a", Type: Int}, Column{Name: "A", Type: Str}); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	if _, err := NewSchema(Column{Name: "", Type: Int}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Type: Type(99)}); err == nil {
		t.Error("invalid type accepted")
	}
}

func TestSchemaColIndex(t *testing.T) {
	s := MustSchema(Column{"id", Int}, Column{"Name", Str})
	if s.ColIndex("name") != 1 {
		t.Error("case-insensitive lookup failed")
	}
	if s.ColIndex("missing") != -1 {
		t.Error("missing column not -1")
	}
	if s.String() != "id int, Name string" {
		t.Errorf("String = %q", s.String())
	}
}

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("orders", MustSchema(
		Column{"id", Int}, Column{"cust", Int}, Column{"total", Float},
	))
	rows := []Row{
		{IntVal(1), IntVal(10), FloatVal(100)},
		{IntVal(2), IntVal(20), FloatVal(50)},
		{IntVal(3), IntVal(10), FloatVal(75)},
		{IntVal(4), IntVal(30), FloatVal(25)},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestInsertValidation(t *testing.T) {
	tbl := NewTable("t", MustSchema(Column{"a", Int}))
	if err := tbl.Insert(Row{IntVal(1), IntVal(2)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tbl.Insert(Row{StrVal("x")}); err == nil {
		t.Error("wrong type accepted")
	}
	if err := tbl.Insert(Row{IntVal(1)}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
}

func TestTableClone(t *testing.T) {
	tbl := testTable(t)
	snap := tbl.Clone()
	tbl.Rows[0][2] = FloatVal(999)
	tbl.MustInsert(Row{IntVal(5), IntVal(1), FloatVal(1)})
	if snap.NumRows() != 4 {
		t.Errorf("clone grew with original: %d rows", snap.NumRows())
	}
	if snap.Rows[0][2].F != 100 {
		t.Error("clone shares row storage with original")
	}
}

func TestSizeBytes(t *testing.T) {
	tbl := NewTable("t", MustSchema(Column{"a", Int}, Column{"s", Str}))
	tbl.MustInsert(Row{IntVal(1), StrVal("abcd")})
	if got := tbl.SizeBytes(); got != 12 {
		t.Errorf("SizeBytes = %d, want 12", got)
	}
}

func TestFilter(t *testing.T) {
	tbl := testTable(t)
	out := Filter(tbl, func(r Row) bool { return r[1].I == 10 })
	if out.NumRows() != 2 {
		t.Errorf("filtered rows = %d, want 2", out.NumRows())
	}
}

func TestProject(t *testing.T) {
	tbl := testTable(t)
	out, err := Project(tbl, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Cols[0].Name != "total" || out.Schema.Cols[1].Name != "id" {
		t.Errorf("projected schema = %v", out.Schema)
	}
	if out.Rows[0][0].F != 100 || out.Rows[0][1].I != 1 {
		t.Errorf("projected row = %v", out.Rows[0])
	}
	if _, err := Project(tbl, []int{9}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestHashJoin(t *testing.T) {
	orders := testTable(t)
	custs := NewTable("cust", MustSchema(Column{"cid", Int}, Column{"cname", Str}))
	custs.MustInsert(Row{IntVal(10), StrVal("alice")})
	custs.MustInsert(Row{IntVal(20), StrVal("bob")})

	out, err := HashJoin(orders, custs, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Orders with cust 30 have no match; 10 matches twice, 20 once.
	if out.NumRows() != 3 {
		t.Fatalf("join rows = %d, want 3", out.NumRows())
	}
	if out.Schema.Arity() != 5 {
		t.Errorf("join arity = %d, want 5", out.Schema.Arity())
	}
	for _, r := range out.Rows {
		if r[1].I != r[3].I {
			t.Errorf("join key mismatch in row %v", r)
		}
	}
}

func TestHashJoinBuildSideSwap(t *testing.T) {
	// The probe side is larger: column order must still be left-then-right.
	small := NewTable("s", MustSchema(Column{"k", Int}))
	small.MustInsert(Row{IntVal(10)})
	big := testTable(t)
	out, err := HashJoin(big, small, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
	if out.Schema.Cols[0].Name != "id" || out.Schema.Cols[3].Name != "k" {
		t.Errorf("column order wrong after build-side swap: %v", out.Schema)
	}
}

func TestHashJoinErrors(t *testing.T) {
	a := testTable(t)
	if _, err := HashJoin(a, a, nil, nil); err == nil {
		t.Error("empty keys accepted")
	}
	if _, err := HashJoin(a, a, []int{0}, []int{99}); err == nil {
		t.Error("out-of-range key accepted")
	}
	if _, err := HashJoin(a, a, []int{0, 1}, []int{0}); err == nil {
		t.Error("mismatched key lengths accepted")
	}
}

func TestAggregateGrouped(t *testing.T) {
	tbl := testTable(t)
	out, err := Aggregate(tbl, []int{1}, []AggSpec{
		{Fn: Sum, Col: 2, As: "revenue"},
		{Fn: Count, Col: -1, As: "n"},
		{Fn: Avg, Col: 2, As: "avg_total"},
		{Fn: Max, Col: 2, As: "max_total"},
		{Fn: Min, Col: 0, As: "min_id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", out.NumRows())
	}
	// First-seen group order: cust 10 first.
	r := out.Rows[0]
	if r[0].I != 10 || r[1].F != 175 || r[2].I != 2 || r[3].F != 87.5 || r[4].F != 100 || r[5].I != 1 {
		t.Errorf("group row = %v", r)
	}
}

func TestAggregateGlobalEmptyInput(t *testing.T) {
	tbl := NewTable("t", MustSchema(Column{"a", Float}))
	out, err := Aggregate(tbl, nil, []AggSpec{
		{Fn: Count, Col: -1, As: "n"},
		{Fn: Sum, Col: 0, As: "s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", out.NumRows())
	}
	if out.Rows[0][0].I != 0 || out.Rows[0][1].F != 0 {
		t.Errorf("empty aggregate = %v", out.Rows[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	tbl := NewTable("t", MustSchema(Column{"s", Str}))
	tbl.MustInsert(Row{StrVal("x")})
	if _, err := Aggregate(tbl, nil, []AggSpec{{Fn: Sum, Col: 0, As: "s"}}); err == nil {
		t.Error("sum over strings accepted")
	}
	if _, err := Aggregate(tbl, []int{5}, nil); err == nil {
		t.Error("out-of-range group column accepted")
	}
	if _, err := Aggregate(tbl, nil, []AggSpec{{Fn: Sum, Col: 9, As: "s"}}); err == nil {
		t.Error("out-of-range aggregate column accepted")
	}
}

func TestAggregateMinMaxStrings(t *testing.T) {
	tbl := NewTable("t", MustSchema(Column{"s", Str}))
	for _, s := range []string{"pear", "apple", "zebra"} {
		tbl.MustInsert(Row{StrVal(s)})
	}
	out, err := Aggregate(tbl, nil, []AggSpec{
		{Fn: Min, Col: 0, As: "lo"},
		{Fn: Max, Col: 0, As: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].S != "apple" || out.Rows[0][1].S != "zebra" {
		t.Errorf("min/max = %v", out.Rows[0])
	}
}

func TestSort(t *testing.T) {
	tbl := testTable(t)
	if err := Sort(tbl, []SortKey{{Col: 2, Desc: true}}); err != nil {
		t.Fatal(err)
	}
	want := []float64{100, 75, 50, 25}
	for i, w := range want {
		if tbl.Rows[i][2].F != w {
			t.Fatalf("sorted totals = %v...", tbl.Rows[i][2].F)
		}
	}
	if err := Sort(tbl, []SortKey{{Col: 9}}); err == nil {
		t.Error("out-of-range sort column accepted")
	}
}

func TestSortMultiKeyStable(t *testing.T) {
	tbl := testTable(t)
	// Sort by cust asc, then total desc.
	if err := Sort(tbl, []SortKey{{Col: 1}, {Col: 2, Desc: true}}); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][1].I != 10 || tbl.Rows[0][2].F != 100 {
		t.Errorf("first row = %v", tbl.Rows[0])
	}
	if tbl.Rows[1][1].I != 10 || tbl.Rows[1][2].F != 75 {
		t.Errorf("second row = %v", tbl.Rows[1])
	}
}

func TestLimit(t *testing.T) {
	tbl := testTable(t)
	if err := Limit(tbl, 2); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", tbl.NumRows())
	}
	if err := Limit(tbl, 100); err != nil || tbl.NumRows() != 2 {
		t.Error("limit beyond size should be a no-op")
	}
	if err := Limit(tbl, -1); err == nil {
		t.Error("negative limit accepted")
	}
}

// TestJoinCardinalityProperty: joining a table with itself on a unique key
// returns exactly the original cardinality.
func TestJoinCardinalityProperty(t *testing.T) {
	f := func(keys []int64) bool {
		seen := make(map[int64]bool)
		tbl := NewTable("t", MustSchema(Column{"k", Int}))
		for _, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			tbl.MustInsert(Row{IntVal(k)})
		}
		out, err := HashJoin(tbl, tbl, []int{0}, []int{0})
		return err == nil && out.NumRows() == tbl.NumRows()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAggregateSumProperty: the grand total equals the sum of per-group
// sums, for any grouping.
func TestAggregateSumProperty(t *testing.T) {
	f := func(pairs []struct {
		G uint8
		V int32
	}) bool {
		tbl := NewTable("t", MustSchema(Column{"g", Int}, Column{"v", Float}))
		var want float64
		for _, p := range pairs {
			tbl.MustInsert(Row{IntVal(int64(p.G)), FloatVal(float64(p.V))})
			want += float64(p.V)
		}
		out, err := Aggregate(tbl, []int{0}, []AggSpec{{Fn: Sum, Col: 1, As: "s"}})
		if err != nil {
			return false
		}
		var got float64
		for _, r := range out.Rows {
			got += r[1].F
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregateCountDistinct(t *testing.T) {
	tbl := testTable(t)
	out, err := Aggregate(tbl, nil, []AggSpec{
		{Fn: CountDistinct, Col: 1, As: "custs"},
		{Fn: Count, Col: -1, As: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].I != 3 || out.Rows[0][1].I != 4 {
		t.Errorf("row = %v", out.Rows[0])
	}
	if out.Schema.Cols[0].Type != Int {
		t.Errorf("count-distinct type = %v", out.Schema.Cols[0].Type)
	}
}

// TestJoinKeyNoBoundaryCollisions: crafted strings containing separator
// bytes must not collide across column boundaries.
func TestJoinKeyNoBoundaryCollisions(t *testing.T) {
	a := Row{StrVal("a\x00b"), StrVal("c")}
	b := Row{StrVal("a"), StrVal("b\x00c")}
	if RowKey(a, []int{0, 1}) == RowKey(b, []int{0, 1}) {
		t.Error("boundary collision between distinct rows")
	}
	// Length-prefix spoofing attempt.
	c := Row{StrVal("s\x00\x00\x00\x00\x00\x00\x00\x01x"), StrVal("")}
	d := Row{StrVal("s"), StrVal("x")}
	if RowKey(c, []int{0, 1}) == RowKey(d, []int{0, 1}) {
		t.Error("length-prefix collision")
	}
}

func TestRowKeyNumericEquivalence(t *testing.T) {
	if RowKey(Row{IntVal(3)}, []int{0}) != RowKey(Row{FloatVal(3)}, []int{0}) {
		t.Error("3 and 3.0 should share a key")
	}
	if RowKey(Row{IntVal(3)}, []int{0}) == RowKey(Row{DateVal(3)}, []int{0}) {
		t.Error("int and date keys must differ")
	}
}

// TestJoinGroupKeyProperty: rows group together iff their key columns are
// pairwise Equal.
func TestJoinGroupKeyProperty(t *testing.T) {
	f := func(aInt int64, aStr string, bInt int64, bStr string) bool {
		a := Row{IntVal(aInt), StrVal(aStr)}
		b := Row{IntVal(bInt), StrVal(bStr)}
		same := aInt == bInt && aStr == bStr
		return (RowKey(a, []int{0, 1}) == RowKey(b, []int{0, 1})) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
