package relation

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Filter returns the rows of t satisfying pred, as a new table.
func Filter(t *Table, pred func(Row) bool) *Table {
	out := NewTable(t.Name, t.Schema)
	for _, r := range t.Rows {
		if pred(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Project returns a table with only the given column positions, in order.
func Project(t *Table, cols []int) (*Table, error) {
	outCols := make([]Column, len(cols))
	for i, c := range cols {
		if c < 0 || c >= t.Schema.Arity() {
			return nil, fmt.Errorf("relation: project: column %d out of range for %s", c, t.Name)
		}
		outCols[i] = t.Schema.Cols[c]
	}
	out := &Table{Name: t.Name, Schema: Schema{Cols: outCols}, Rows: make([]Row, 0, len(t.Rows))}
	for _, r := range t.Rows {
		nr := make(Row, len(cols))
		for i, c := range cols {
			nr[i] = r[c]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// HashJoin equijoins l and r on the given key column positions (pairwise:
// l.Rows[lk[i]] == r.Rows[rk[i]] for all i). The output schema is l's
// columns followed by r's columns; callers that need unambiguous names
// qualify them beforehand (internal/sqlmini does).
func HashJoin(l, r *Table, lk, rk []int) (*Table, error) {
	return HashJoinContext(context.Background(), l, r, lk, rk)
}

// HashJoinContext is HashJoin under a context: the build and probe loops
// checkpoint the context every few thousand rows, so a join whose output
// explodes (or whose caller's deadline expires mid-flight) aborts promptly
// with the context's cause instead of materializing the rest.
func HashJoinContext(ctx context.Context, l, r *Table, lk, rk []int) (*Table, error) {
	if len(lk) != len(rk) || len(lk) == 0 {
		return nil, fmt.Errorf("relation: hash join needs matching non-empty key lists, got %d and %d", len(lk), len(rk))
	}
	for _, c := range lk {
		if c < 0 || c >= l.Schema.Arity() {
			return nil, fmt.Errorf("relation: join key %d out of range for %s", c, l.Name)
		}
	}
	for _, c := range rk {
		if c < 0 || c >= r.Schema.Arity() {
			return nil, fmt.Errorf("relation: join key %d out of range for %s", c, r.Name)
		}
	}

	outSchema := Schema{Cols: make([]Column, 0, l.Schema.Arity()+r.Schema.Arity())}
	outSchema.Cols = append(outSchema.Cols, l.Schema.Cols...)
	outSchema.Cols = append(outSchema.Cols, r.Schema.Cols...)
	out := &Table{Name: l.Name + "⨝" + r.Name, Schema: outSchema}

	// Build on the smaller input.
	build, probe, bk, pk, buildLeft := l, r, lk, rk, true
	if r.NumRows() < l.NumRows() {
		build, probe, bk, pk, buildLeft = r, l, rk, lk, false
	}
	// Checkpoint cadence for context checks: build rows, probe rows, and
	// emitted rows all advance the counter, so a skewed key whose single
	// probe emits millions of rows still notices cancellation in-batch.
	const checkEvery = 4096
	ticks := 0
	tick := func() error {
		ticks++
		if ticks%checkEvery != 0 {
			return nil
		}
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		return nil
	}

	index := make(map[string][]Row, build.NumRows())
	for _, row := range build.Rows {
		if err := tick(); err != nil {
			return nil, err
		}
		index[joinKey(row, bk)] = append(index[joinKey(row, bk)], row)
	}
	for _, prow := range probe.Rows {
		if err := tick(); err != nil {
			return nil, err
		}
		for _, brow := range index[joinKey(prow, pk)] {
			if err := tick(); err != nil {
				return nil, err
			}
			nr := make(Row, 0, outSchema.Arity())
			if buildLeft {
				nr = append(nr, brow...)
				nr = append(nr, prow...)
			} else {
				nr = append(nr, prow...)
				nr = append(nr, brow...)
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// RowKey returns a collision-free composite key over the given column
// positions of the row — the canonical grouping/join/dedup key.
func RowKey(r Row, cols []int) string { return joinKey(r, cols) }

// joinKey serializes key cells into a composite map key. Each component
// is tagged and length-prefixed so no byte sequence in one cell can
// impersonate a column boundary, and numerically equal Int/Float cells
// produce the same key (they must join).
func joinKey(r Row, cols []int) string {
	var b []byte
	for _, c := range cols {
		b = appendKeyPart(b, r[c])
	}
	return string(b)
}

func appendKeyPart(b []byte, v Value) []byte {
	switch v.T {
	case Int, Float:
		// Normalize to the float64 bit pattern so 3 and 3.0 share a key.
		f, _ := v.AsFloat()
		bits := math.Float64bits(f)
		b = append(b, 'n')
		for shift := 56; shift >= 0; shift -= 8 {
			b = append(b, byte(bits>>shift))
		}
	case Date:
		b = append(b, 'd')
		u := uint64(v.I)
		for shift := 56; shift >= 0; shift -= 8 {
			b = append(b, byte(u>>shift))
		}
	case Str:
		b = append(b, 's')
		n := uint64(len(v.S))
		for shift := 56; shift >= 0; shift -= 8 {
			b = append(b, byte(n>>shift))
		}
		b = append(b, v.S...)
	default:
		b = append(b, '?')
	}
	return b
}

// AggFn enumerates the aggregate functions.
type AggFn int

const (
	// Sum adds numeric cells.
	Sum AggFn = iota + 1
	// Count counts rows (its column argument is ignored).
	Count
	// Avg averages numeric cells.
	Avg
	// Min and Max take extremes under Compare ordering.
	Min
	Max
	// CountDistinct counts distinct values of its column.
	CountDistinct
)

// String names the aggregate.
func (f AggFn) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	case CountDistinct:
		return "count-distinct"
	default:
		return fmt.Sprintf("AggFn(%d)", int(f))
	}
}

// AggSpec is one aggregate output column.
type AggSpec struct {
	Fn  AggFn
	Col int    // input column position (ignored by Count)
	As  string // output column name
}

// Aggregate groups t by the groupBy columns and computes the aggregates.
// With an empty groupBy it produces a single global row (even for an empty
// input, per SQL semantics for COUNT/SUM over empty sets: COUNT is 0, other
// aggregates are 0-valued floats here rather than NULL, since the engine
// has no NULLs).
func Aggregate(t *Table, groupBy []int, aggs []AggSpec) (*Table, error) {
	for _, c := range groupBy {
		if c < 0 || c >= t.Schema.Arity() {
			return nil, fmt.Errorf("relation: group-by column %d out of range", c)
		}
	}
	for _, a := range aggs {
		if a.Fn != Count && (a.Col < 0 || a.Col >= t.Schema.Arity()) {
			return nil, fmt.Errorf("relation: aggregate column %d out of range", a.Col)
		}
	}

	outCols := make([]Column, 0, len(groupBy)+len(aggs))
	for _, c := range groupBy {
		outCols = append(outCols, t.Schema.Cols[c])
	}
	for _, a := range aggs {
		typ := Float
		if a.Fn == Count || a.Fn == CountDistinct {
			typ = Int
		}
		if (a.Fn == Min || a.Fn == Max) && a.Col >= 0 && a.Col < t.Schema.Arity() {
			typ = t.Schema.Cols[a.Col].Type
		}
		outCols = append(outCols, Column{Name: a.As, Type: typ})
	}
	out := &Table{Name: t.Name, Schema: Schema{Cols: outCols}}

	type groupState struct {
		key      Row
		sums     []float64
		counts   []int64
		mins     []Value
		maxs     []Value
		distinct []map[any]bool
		n        int64
	}
	groups := make(map[string]*groupState)
	var order []string // deterministic output: first-seen group order
	for _, r := range t.Rows {
		k := joinKey(r, groupBy)
		g, ok := groups[k]
		if !ok {
			g = &groupState{
				sums:     make([]float64, len(aggs)),
				counts:   make([]int64, len(aggs)),
				mins:     make([]Value, len(aggs)),
				maxs:     make([]Value, len(aggs)),
				distinct: make([]map[any]bool, len(aggs)),
			}
			g.key = make(Row, len(groupBy))
			for i, c := range groupBy {
				g.key[i] = r[c]
			}
			groups[k] = g
			order = append(order, k)
		}
		g.n++
		for i, a := range aggs {
			switch a.Fn {
			case Count:
				g.counts[i]++
			case CountDistinct:
				if g.distinct[i] == nil {
					g.distinct[i] = make(map[any]bool)
				}
				g.distinct[i][r[a.Col].Key()] = true
			case Sum, Avg:
				f, ok := r[a.Col].AsFloat()
				if !ok {
					return nil, fmt.Errorf("relation: %s over non-numeric column %s", a.Fn, t.Schema.Cols[a.Col].Name)
				}
				g.sums[i] += f
				g.counts[i]++
			case Min, Max:
				v := r[a.Col]
				cur := g.mins[i]
				if a.Fn == Max {
					cur = g.maxs[i]
				}
				if cur.T == 0 {
					g.mins[i], g.maxs[i] = v, v
					continue
				}
				c, err := Compare(v, cur)
				if err != nil {
					return nil, err
				}
				if a.Fn == Min && c < 0 {
					g.mins[i] = v
				}
				if a.Fn == Max && c > 0 {
					g.maxs[i] = v
				}
			default:
				return nil, fmt.Errorf("relation: unknown aggregate %d", int(a.Fn))
			}
		}
	}

	if len(groups) == 0 && len(groupBy) == 0 {
		// Global aggregate over an empty input still yields one row.
		row := make(Row, 0, len(aggs))
		for _, a := range aggs {
			switch a.Fn {
			case Count, CountDistinct:
				row = append(row, IntVal(0))
			case Min, Max:
				row = append(row, Value{T: out.Schema.Cols[len(groupBy)+len(row)].Type})
			default:
				row = append(row, FloatVal(0))
			}
		}
		out.Rows = append(out.Rows, row)
		return out, nil
	}

	for _, k := range order {
		g := groups[k]
		row := make(Row, 0, out.Schema.Arity())
		row = append(row, g.key...)
		for i, a := range aggs {
			switch a.Fn {
			case Count:
				row = append(row, IntVal(g.counts[i]))
			case CountDistinct:
				row = append(row, IntVal(int64(len(g.distinct[i]))))
			case Sum:
				row = append(row, FloatVal(g.sums[i]))
			case Avg:
				row = append(row, FloatVal(g.sums[i]/float64(g.counts[i])))
			case Min:
				row = append(row, g.mins[i])
			case Max:
				row = append(row, g.maxs[i])
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort stably sorts the table's rows in place by the given keys.
func Sort(t *Table, keys []SortKey) error {
	for _, k := range keys {
		if k.Col < 0 || k.Col >= t.Schema.Arity() {
			return fmt.Errorf("relation: sort column %d out of range", k.Col)
		}
	}
	var sortErr error
	sort.SliceStable(t.Rows, func(i, j int) bool {
		for _, k := range keys {
			c, err := Compare(t.Rows[i][k.Col], t.Rows[j][k.Col])
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

// Limit truncates the table to at most n rows (in place). Negative n is an
// error.
func Limit(t *Table, n int) error {
	if n < 0 {
		return fmt.Errorf("relation: negative limit %d", n)
	}
	if n < len(t.Rows) {
		t.Rows = t.Rows[:n]
	}
	return nil
}
