package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ivdss/internal/core"
)

// BudgetConfig parameterizes per-tenant IV budgets.
type BudgetConfig struct {
	// Weights maps tenant names to budget weights: a tenant with twice the
	// weight is entitled to twice the delivered IV before its queries
	// become preferred shedding victims. Unlisted tenants (including the
	// empty default tenant) get Default.
	Weights map[string]float64
	// Default is the weight for unlisted tenants (default 1).
	Default float64
	// HalfLife is the decay half-life of charged spend, in experiment
	// minutes (default 60): budgets measure recent consumption, not
	// all-time totals, so a tenant that backs off recovers.
	HalfLife core.Duration
	// Now supplies the experiment clock for decay; required.
	Now func() core.Time
}

// Budgets tracks per-tenant IV consumption and implements the
// weighted-fair victim policy for bounded admission queues
// (scheduler.EngineConfig.Victim): when the queue is full, the query with
// the lowest budget-weighted priority — business value × weight scaled
// down by the tenant's recent normalized spend — is shed in favor of the
// arrival, provided the arrival outranks it. Charge delivered IV on every
// completion to keep the debt accounts honest. Safe for concurrent use.
type Budgets struct {
	cfg BudgetConfig

	mu sync.Mutex
	// spent holds decayed delivered IV per tenant; decayed lazily against
	// decayedAt on every access.
	spent     map[string]float64
	decayedAt core.Time
}

// NewBudgets validates the config and returns a zero-spend account set.
func NewBudgets(cfg BudgetConfig) (*Budgets, error) {
	if cfg.Now == nil {
		return nil, fmt.Errorf("cluster: budgets need a clock")
	}
	if cfg.Default == 0 {
		cfg.Default = 1
	}
	if cfg.Default < 0 {
		return nil, fmt.Errorf("cluster: default tenant weight %v must be positive", cfg.Default)
	}
	// Validate in sorted order so the reported offender is deterministic.
	tenants := make([]string, 0, len(cfg.Weights))
	for t := range cfg.Weights {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if w := cfg.Weights[t]; w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("cluster: tenant %q weight %v must be positive and finite", t, w)
		}
	}
	if cfg.HalfLife == 0 {
		cfg.HalfLife = 60
	}
	if cfg.HalfLife < 0 {
		return nil, fmt.Errorf("cluster: budget half-life %v must be positive", cfg.HalfLife)
	}
	return &Budgets{cfg: cfg, spent: make(map[string]float64), decayedAt: cfg.Now()}, nil
}

// Weight returns a tenant's budget weight.
func (b *Budgets) Weight(tenant string) float64 {
	if w, ok := b.cfg.Weights[tenant]; ok {
		return w
	}
	return b.cfg.Default
}

// decayLocked rolls every spend account forward to now.
func (b *Budgets) decayLocked(now core.Time) {
	dt := now - b.decayedAt
	if dt <= 0 {
		return
	}
	f := math.Pow(.5, dt/b.cfg.HalfLife)
	for t := range b.spent {
		b.spent[t] *= f
	}
	b.decayedAt = now
}

// Charge records delivered information value against a tenant's budget.
func (b *Budgets) Charge(tenant string, iv float64) {
	if iv <= 0 {
		return
	}
	b.mu.Lock()
	b.decayLocked(b.cfg.Now())
	b.spent[tenant] += iv
	b.mu.Unlock()
}

// Spent returns the decayed per-tenant consumption, for status displays.
func (b *Budgets) Spent() map[string]float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.decayLocked(b.cfg.Now())
	out := make(map[string]float64, len(b.spent))
	for t, v := range b.spent {
		out[t] = v
	}
	return out
}

// priorityLocked scores one query: IV potential per budget unit. Recent
// spend divides the score — a tenant that has consumed its weighted share
// ranks below one that has not, which is exactly weighted fair shedding.
func (b *Budgets) priorityLocked(q core.Query) float64 {
	bv := q.BusinessValue
	if bv == 0 {
		bv = 1 // wire default: unvalued queries count as unit value
	}
	w := b.Weight(q.Tenant)
	return bv * w / (1 + b.spent[q.Tenant]/w)
}

// Victim implements scheduler.EngineConfig.Victim: pick the queued query
// with the lowest budget-weighted priority, and evict it only if the
// arrival outranks it — otherwise refuse the arrival (-1). Determinism:
// the earliest-queued minimum wins ties.
func (b *Budgets) Victim(arriving core.Query, queued []core.Query) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.decayLocked(b.cfg.Now())
	worst := -1
	worstScore := 0.0
	for i, q := range queued {
		if s := b.priorityLocked(q); worst < 0 || s < worstScore {
			worst, worstScore = i, s
		}
	}
	if worst < 0 || b.priorityLocked(arriving) <= worstScore {
		return -1
	}
	return worst
}
