package cluster

import (
	"testing"

	"ivdss/internal/core"
)

// NewBudgets validates tenants in sorted order, so with several invalid
// weights the reported offender is always the lexically smallest — not
// whichever the map happened to yield first.
func TestNewBudgetsDeterministicOffender(t *testing.T) {
	const want = `cluster: tenant "alpha" weight -1 must be positive and finite`
	for i := 0; i < 32; i++ {
		weights := map[string]float64{"gamma": -3, "beta": -2, "alpha": -1, "ok": 1}
		_, err := NewBudgets(BudgetConfig{
			Weights: weights,
			Now:     func() core.Time { return 0 },
		})
		if err == nil || err.Error() != want {
			t.Fatalf("run %d: NewBudgets error = %v; want %q", i, err, want)
		}
	}
}
