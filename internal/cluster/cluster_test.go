package cluster

import (
	"fmt"
	"testing"

	"ivdss/internal/core"
)

func tableSet(n int) []core.TableID {
	out := make([]core.TableID, n)
	for i := range out {
		out[i] = core.TableID(fmt.Sprintf("t%02d", i))
	}
	return out
}

func TestShardMapValidation(t *testing.T) {
	if _, err := NewShardMap(0); err == nil {
		t.Error("zero shards accepted")
	}
	m, err := NewShardMap(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 4 {
		t.Errorf("Shards = %d", m.Shards())
	}
}

func TestShardOfIsOrderFree(t *testing.T) {
	m, _ := NewShardMap(4)
	perms := [][]core.TableID{
		{"orders", "lineitem", "customer"},
		{"customer", "orders", "lineitem"},
		{"lineitem", "customer", "orders"},
	}
	want := m.ShardOf(perms[0])
	for _, p := range perms[1:] {
		if got := m.ShardOf(p); got != want {
			t.Errorf("ShardOf(%v) = %d, want %d", p, got, want)
		}
	}
	if m.ShardOf(nil) != 0 {
		t.Error("empty footprint must route to shard 0")
	}
}

// TestShardMapDistribution: rendezvous ownership must spread tables across
// every shard — the exact regression the murmur finalizer fixed, where
// FNV-1a's weak avalanche let one shard win every table.
func TestShardMapDistribution(t *testing.T) {
	m, _ := NewShardMap(4)
	counts := make(map[ShardID]int)
	tables := tableSet(60)
	for _, tbl := range tables {
		counts[m.Owner(tbl)]++
	}
	for s := 0; s < 4; s++ {
		n := counts[ShardID(s)]
		if n == 0 {
			t.Errorf("shard %d owns no tables out of %d", s, len(tables))
		}
		if n > len(tables)*6/10 {
			t.Errorf("shard %d owns %d/%d tables — ownership collapsed onto one shard", s, n, len(tables))
		}
	}
}

// TestAnchorLocality: footprints sharing their anchor table co-locate —
// the property that keeps micro-batch MQO effective across shards.
func TestAnchorLocality(t *testing.T) {
	m, _ := NewShardMap(8)
	fp := []core.TableID{"orders", "lineitem", "part"}
	anchor := m.Anchor(fp)
	if anchor == "" {
		t.Fatal("no anchor for non-empty footprint")
	}
	if got := m.ShardOf([]core.TableID{anchor}); got != m.ShardOf(fp) {
		t.Errorf("anchor-only footprint routes to %d, full footprint to %d", got, m.ShardOf(fp))
	}
	// A different footprint that shares the anchor shares the shard.
	other := []core.TableID{anchor, "nation"}
	if m.Anchor(other) == anchor && m.ShardOf(other) != m.ShardOf(fp) {
		t.Errorf("footprints sharing anchor %s landed on different shards", anchor)
	}
}

// TestRendezvousStability: growing the cluster by one shard may move a
// table only to the new shard, never between surviving shards.
func TestRendezvousStability(t *testing.T) {
	m4, _ := NewShardMap(4)
	m5, _ := NewShardMap(5)
	moved := 0
	tables := tableSet(60)
	for _, tbl := range tables {
		before, after := m4.Owner(tbl), m5.Owner(tbl)
		if after == before {
			continue
		}
		if after != 4 {
			t.Errorf("table %s moved %d→%d on grow; only moves to the new shard are allowed", tbl, before, after)
		}
		moved++
	}
	if moved == 0 {
		t.Error("no table moved to the new shard — rendezvous weights look degenerate")
	}
	if moved > len(tables)/2 {
		t.Errorf("%d/%d tables moved on a 4→5 grow; expected roughly 1/5", moved, len(tables))
	}
}

func TestTableMergeVersionSemantics(t *testing.T) {
	tab := NewTable(0)
	if tab.Merge(Digest{Node: 0, Version: 9}, 1) {
		t.Error("digest about self merged")
	}
	fresh := map[core.TableID]core.Time{"a": 5}
	if !tab.Merge(Digest{Node: 1, Version: 2, QueueDepth: 3, Freshness: fresh}, 10) {
		t.Error("first digest rejected")
	}
	if tab.Merge(Digest{Node: 1, Version: 2, QueueDepth: 99}, 11) {
		t.Error("equal version superseded the held view")
	}
	if tab.Merge(Digest{Node: 1, Version: 1, QueueDepth: 99}, 12) {
		t.Error("stale version superseded the held view")
	}
	if !tab.Merge(Digest{Node: 1, Version: 3, QueueDepth: 7}, 13) {
		t.Error("newer version rejected")
	}
	v, ok := tab.Peer(1)
	if !ok || v.Version != 3 || v.QueueDepth != 7 || v.ReceivedAt != 13 {
		t.Errorf("held view %+v, want version 3 depth 7 received at 13", v)
	}
	// The merge must have deep-copied the sender's maps.
	tab.Merge(Digest{Node: 2, Version: 1, Freshness: fresh}, 14)
	fresh["a"] = 99
	if v, _ := tab.Peer(2); v.Freshness["a"] != 5 {
		t.Error("merged view aliases the sender's freshness map")
	}
	if got := tab.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	peers := tab.Peers()
	if len(peers) != 2 || peers[0].Node != 1 || peers[1].Node != 2 {
		t.Errorf("Peers() not sorted by shard ID: %+v", peers)
	}
}

// stealTable builds a peer table where each peer advertises the given
// queue depth and replica coverage, all received at the given instant.
func stealTable(t *testing.T, self ShardID, views map[ShardID]struct {
	depth    int
	tables   []core.TableID
	received core.Time
}) *Table {
	t.Helper()
	tab := NewTable(self)
	for node, v := range views {
		fresh := make(map[core.TableID]core.Time, len(v.tables))
		for _, tbl := range v.tables {
			fresh[tbl] = 0
		}
		if !tab.Merge(Digest{Node: node, Version: 1, QueueDepth: v.depth, Freshness: fresh}, v.received) {
			t.Fatalf("merge for node %d rejected", node)
		}
	}
	return tab
}

func TestChooseTarget(t *testing.T) {
	type view = struct {
		depth    int
		tables   []core.TableID
		received core.Time
	}
	fp := []core.TableID{"a", "b"}
	cfg := StealConfig{HighWater: 10, MaxAge: 5}

	tab := stealTable(t, 0, map[ShardID]view{
		1: {depth: 4, tables: fp, received: 100},
		2: {depth: 2, tables: fp, received: 100},
		3: {depth: 1, tables: []core.TableID{"a"}, received: 100}, // no coverage of b
		4: {depth: 0, tables: fp, received: 50},                   // stale view
	})
	now := core.Time(100)

	if _, ok := ChooseTarget(tab, 9, fp, now, cfg); ok {
		t.Error("stole below the high-water mark")
	}
	if _, ok := ChooseTarget(tab, 12, fp, now, StealConfig{}); ok {
		t.Error("stole with stealing disabled")
	}
	if _, ok := ChooseTarget(tab, 12, nil, now, cfg); ok {
		t.Error("stole an empty footprint")
	}
	got, ok := ChooseTarget(tab, 12, fp, now, cfg)
	if !ok || got != 2 {
		t.Errorf("target = %d ok=%v, want least-loaded covering fresh peer 2", got, ok)
	}

	// A peer at or above the high-water mark is never a target, even when
	// shorter than the local queue.
	hot := stealTable(t, 0, map[ShardID]view{1: {depth: 10, tables: fp, received: 100}})
	if _, ok := ChooseTarget(hot, 15, fp, now, cfg); ok {
		t.Error("dumped work on a peer already at the high-water mark")
	}

	// Ties break to the lowest shard ID so concurrent deciders agree.
	tie := stealTable(t, 0, map[ShardID]view{
		5: {depth: 3, tables: fp, received: 100},
		2: {depth: 3, tables: fp, received: 100},
	})
	if got, ok := ChooseTarget(tie, 12, fp, now, cfg); !ok || got != 2 {
		t.Errorf("tie target = %d ok=%v, want lowest ID 2", got, ok)
	}
}

func TestBudgetsValidation(t *testing.T) {
	if _, err := NewBudgets(BudgetConfig{}); err == nil {
		t.Error("missing clock accepted")
	}
	now := func() core.Time { return 0 }
	if _, err := NewBudgets(BudgetConfig{Now: now, Weights: map[string]float64{"x": -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewBudgets(BudgetConfig{Now: now, HalfLife: -3}); err == nil {
		t.Error("negative half-life accepted")
	}
	b, err := NewBudgets(BudgetConfig{Now: now, Weights: map[string]float64{"gold": 3}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Weight("gold") != 3 || b.Weight("unknown") != 1 {
		t.Errorf("weights: gold=%v unknown=%v", b.Weight("gold"), b.Weight("unknown"))
	}
}

func TestBudgetsVictimWeightedFairness(t *testing.T) {
	now := core.Time(0)
	b, err := NewBudgets(BudgetConfig{
		Weights: map[string]float64{"gold": 3, "bronze": 1},
		Now:     func() core.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	queued := []core.Query{
		{ID: "g", BusinessValue: 1, Tenant: "gold"},
		{ID: "b", BusinessValue: 1, Tenant: "bronze"},
	}
	// Fresh budgets: bronze (weight 1) ranks below gold (weight 3), and a
	// gold arrival outranks it.
	if got := b.Victim(core.Query{BusinessValue: 1, Tenant: "gold"}, queued); got != 1 {
		t.Errorf("victim = %d, want the bronze query at 1", got)
	}
	// An arrival that does not outrank the weakest queued query is refused.
	if got := b.Victim(core.Query{BusinessValue: .1, Tenant: "bronze"}, queued); got != -1 {
		t.Errorf("victim = %d, want -1 for an arrival below the floor", got)
	}
	// Heavy recent gold spend flips the ordering: weighted fairness, not
	// static priority.
	b.Charge("gold", 30)
	if got := b.Victim(core.Query{BusinessValue: 1, Tenant: "bronze"}, queued); got != 0 {
		t.Errorf("victim = %d, want the over-budget gold query at 0", got)
	}
	// Spend decays with the half-life, so a tenant that backs off recovers.
	spent := b.Spent()["gold"]
	now += 60 // the default half-life
	decayed := b.Spent()["gold"]
	if decayed >= spent || decayed < spent*.45 || decayed > spent*.55 {
		t.Errorf("spend %v decayed to %v after one half-life, want ≈ half", spent, decayed)
	}
}
