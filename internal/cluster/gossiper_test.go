package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/metrics"
	"ivdss/internal/scheduler"
)

// directTransport delivers exchanges straight to the peer's handler, like
// the DES transport in internal/bench.
type directTransport struct {
	peers map[ShardID]*Gossiper
}

func (t *directTransport) Exchange(peer ShardID, d Digest) (Digest, error) {
	g, ok := t.peers[peer]
	if !ok {
		return Digest{}, fmt.Errorf("no peer %d", peer)
	}
	return g.Handle(d), nil
}

func TestGossiperValidation(t *testing.T) {
	clock := &scheduler.ManualClock{}
	tr := &directTransport{}
	state := func() Digest { return Digest{} }
	bad := []GossipConfig{
		{Transport: tr, State: state, Interval: 1},                          // no clock
		{Clock: clock, State: state, Interval: 1},                           // no transport
		{Clock: clock, Transport: tr, Interval: 1},                          // no state
		{Clock: clock, Transport: tr, State: state},                         // zero interval
		{Clock: clock, Transport: tr, State: state, Interval: 1, Jitter: 1}, // jitter out of range
	}
	for i, cfg := range bad {
		if _, err := NewGossiper(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestGossipConvergesOnManualClock runs three gossipers to a bounded
// horizon on a hand-stepped clock: every node must hold fresh views of
// both peers, and the Until bound must drain the callback queue — the
// property that keeps the DES from spinning forever.
func TestGossipConvergesOnManualClock(t *testing.T) {
	clock := &scheduler.ManualClock{}
	tr := &directTransport{peers: map[ShardID]*Gossiper{}}
	reg := metrics.NewRegistry()
	const n = 3
	versions := make([]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		var peers []ShardID
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, ShardID(j))
			}
		}
		g, err := NewGossiper(GossipConfig{
			Self:      ShardID(i),
			Peers:     peers,
			Clock:     clock,
			Transport: tr,
			State: func() Digest {
				versions[i]++
				return Digest{Node: ShardID(i), Version: versions[i], Clock: clock.Now(), QueueDepth: i}
			},
			Interval: 1,
			Seed:     7,
			Until:    40,
			Stats:    reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr.peers[ShardID(i)] = g
	}
	for _, g := range tr.peers {
		g.Start()
	}
	clock.Run()
	if clock.Pending() != 0 {
		t.Fatalf("Until bound left %d callbacks queued — the DES event queue would never drain", clock.Pending())
	}
	for id, g := range tr.peers {
		if got := g.Table().Len(); got != n-1 {
			t.Errorf("node %d heard from %d peers, want %d", id, got, n-1)
		}
		for _, pv := range g.Table().Peers() {
			if pv.Version == 0 {
				t.Errorf("node %d holds an unversioned view of %d", id, pv.Node)
			}
			if pv.QueueDepth != int(pv.Node) {
				t.Errorf("node %d sees depth %d for %d, want the peer's own state", id, pv.QueueDepth, pv.Node)
			}
		}
	}
	flat := reg.Flatten()
	if flat["gossip_rounds_total"] < float64(n) {
		t.Errorf("gossip_rounds_total = %v, want at least one round per node", flat["gossip_rounds_total"])
	}
	if flat["gossip_merges_total"] == 0 {
		t.Error("no merges counted across a converged run")
	}
	if flat["gossip_failures_total"] != 0 {
		t.Errorf("gossip_failures_total = %v on a lossless transport", flat["gossip_failures_total"])
	}
}

// partitionedNet is a concurrency-safe in-memory transport with a cut set:
// any exchange touching a cut node fails, modelling a network partition.
type partitionedNet struct {
	mu    sync.Mutex
	peers map[ShardID]*Gossiper
	cut   map[ShardID]bool
}

func (n *partitionedNet) isCut(id ShardID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cut[id]
}

func (n *partitionedNet) heal(id ShardID) {
	n.mu.Lock()
	delete(n.cut, id)
	n.mu.Unlock()
}

// nodeTransport is one node's view of the net, so the cut applies to both
// ends of an exchange.
type nodeTransport struct {
	net  *partitionedNet
	self ShardID
}

func (t nodeTransport) Exchange(peer ShardID, d Digest) (Digest, error) {
	if t.net.isCut(t.self) || t.net.isCut(peer) {
		return Digest{}, fmt.Errorf("partitioned: %d↔%d", t.self, peer)
	}
	t.net.mu.Lock()
	g := t.net.peers[peer]
	t.net.mu.Unlock()
	return g.Handle(d), nil
}

// TestGossipConvergenceUnderPartition drives four live gossipers on a
// fast-scaled wall clock with one node cut off, then heals the partition
// and requires every node (including the healed one) to converge on fresh
// views of all peers. Run under -race this also exercises the Table and
// Gossiper locking from concurrent rounds and handlers.
func TestGossipConvergenceUnderPartition(t *testing.T) {
	const n = 4
	const cutNode = ShardID(3)
	// 300 experiment minutes per wall second: interval-1 rounds every ~3ms.
	clock := scheduler.NewWallClock(300)
	net := &partitionedNet{peers: map[ShardID]*Gossiper{}, cut: map[ShardID]bool{cutNode: true}}
	versions := make([]atomic.Uint64, n)
	for i := 0; i < n; i++ {
		i := i
		var peers []ShardID
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, ShardID(j))
			}
		}
		g, err := NewGossiper(GossipConfig{
			Self:      ShardID(i),
			Peers:     peers,
			Clock:     clock,
			Transport: nodeTransport{net: net, self: ShardID(i)},
			State: func() Digest {
				return Digest{
					Node:      ShardID(i),
					Version:   versions[i].Add(1),
					Clock:     clock.Now(),
					Freshness: map[core.TableID]core.Time{"orders": clock.Now()},
				}
			},
			Interval: 1,
			Seed:     int64(11 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		net.peers[ShardID(i)] = g
	}
	for _, g := range net.peers {
		g.Start()
	}
	defer func() {
		for _, g := range net.peers {
			g.Stop()
		}
	}()

	waitFor := func(desc string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The connected majority converges among itself...
	waitFor("majority convergence", func() bool {
		for i := ShardID(0); i < cutNode; i++ {
			tab := net.peers[i].Table()
			for j := ShardID(0); j < cutNode; j++ {
				if i == j {
					continue
				}
				if _, ok := tab.Peer(j); !ok {
					return false
				}
			}
		}
		return true
	})
	// ...while no exchange with the cut node can have succeeded.
	for i := ShardID(0); i < n; i++ {
		if _, ok := net.peers[i].Table().Peer(cutNode); ok {
			t.Fatalf("node %d holds a view of the partitioned node", i)
		}
	}
	if got := net.peers[cutNode].Table().Len(); got != 0 {
		t.Fatalf("partitioned node heard from %d peers", got)
	}

	net.heal(cutNode)
	waitFor("post-heal convergence", func() bool {
		for i := ShardID(0); i < n; i++ {
			if net.peers[i].Table().Len() != n-1 {
				return false
			}
		}
		return true
	})
}
