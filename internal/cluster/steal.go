package cluster

import (
	"ivdss/internal/core"
)

// StealConfig parameterizes work-stealing hand-offs.
type StealConfig struct {
	// HighWater is the local queue depth at or beyond which arrivals are
	// offered to peers instead of queued. Zero disables stealing.
	HighWater int
	// MaxAge discards peer views older than this (experiment minutes):
	// a silent peer's last gossiped depth stops being a steal target.
	// Zero accepts any age.
	MaxAge core.Duration
}

// ChooseTarget picks the hand-off destination for a backed-up shard: the
// least-loaded live peer whose gossiped replica set covers every table in
// the footprint and whose queue is strictly shorter than both the local
// one and the high-water mark (never dump work on another saturated
// shard). Ties break to the lowest shard ID, so concurrent deciders with
// the same view agree. ok=false means keep the work local.
func ChooseTarget(t *Table, localDepth int, footprint []core.TableID, now core.Time, cfg StealConfig) (ShardID, bool) {
	if cfg.HighWater <= 0 || localDepth < cfg.HighWater {
		return 0, false
	}
	best := ShardID(0)
	bestDepth := 0
	found := false
	for _, pv := range t.Peers() {
		if cfg.MaxAge > 0 && now-pv.ReceivedAt > cfg.MaxAge {
			continue
		}
		if pv.QueueDepth >= localDepth || pv.QueueDepth >= cfg.HighWater {
			continue
		}
		if !covers(pv.Digest, footprint) {
			continue
		}
		if !found || pv.QueueDepth < bestDepth {
			best, bestDepth, found = pv.Node, pv.QueueDepth, true
		}
	}
	return best, found
}

// covers reports whether the peer's gossiped replica set holds every table
// in the footprint.
func covers(d Digest, footprint []core.TableID) bool {
	if len(footprint) == 0 {
		return false
	}
	for _, tid := range footprint {
		if _, ok := d.Freshness[tid]; !ok {
			return false
		}
	}
	return true
}
