package cluster

import (
	"sort"
	"sync"

	"ivdss/internal/core"
)

// Digest is one shard's gossiped state summary: what its peers need to
// decide routing fallbacks and work-stealing without a central registry.
// Digests are versioned per node — a higher Version supersedes, so merges
// are idempotent and order-free (the anti-entropy property).
type Digest struct {
	Node ShardID
	// Version is the sender's per-node monotone counter; stale versions
	// lose every merge.
	Version uint64
	// Clock is the sender's experiment time when the digest was cut. Peers
	// exchange it so freshness stamps can be interpreted under skew.
	Clock core.Time
	// QueueDepth is the shard's admission queue length (waiting, not
	// executing); the work-stealing load signal.
	QueueDepth int
	// Slots is the shard's execution parallelism, for depth normalization.
	Slots int
	// TotalIV is the shard's cumulative delivered information value.
	TotalIV float64
	// OpenBreakers flags the remote sites this shard currently sees down.
	OpenBreakers map[core.SiteID]bool
	// Freshness maps every table (and "view:" unit) the shard holds a
	// local replica of to its last synchronization stamp — the coverage
	// set work-stealing checks before handing a footprint over.
	Freshness map[core.TableID]core.Time
}

// clone deep-copies the digest's maps so merged views never alias the
// sender's state.
func (d Digest) clone() Digest {
	out := d
	if d.OpenBreakers != nil {
		out.OpenBreakers = make(map[core.SiteID]bool, len(d.OpenBreakers))
		for k, v := range d.OpenBreakers {
			out.OpenBreakers[k] = v
		}
	}
	if d.Freshness != nil {
		out.Freshness = make(map[core.TableID]core.Time, len(d.Freshness))
		for k, v := range d.Freshness {
			out.Freshness[k] = v
		}
	}
	return out
}

// PeerView is a merged digest plus when this node received it.
type PeerView struct {
	Digest
	ReceivedAt core.Time
}

// Table is the per-node gossip state: the freshest digest seen from every
// peer. It is safe for concurrent use.
type Table struct {
	mu    sync.RWMutex
	self  ShardID
	peers map[ShardID]PeerView
}

// NewTable returns an empty peer table for one node.
func NewTable(self ShardID) *Table {
	return &Table{self: self, peers: make(map[ShardID]PeerView)}
}

// Merge folds a received digest into the table. Digests about this node
// itself and versions at or below the one already held are ignored. It
// reports whether the table changed.
func (t *Table) Merge(d Digest, now core.Time) bool {
	if d.Node == t.self {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if held, ok := t.peers[d.Node]; ok && d.Version <= held.Version {
		return false
	}
	t.peers[d.Node] = PeerView{Digest: d.clone(), ReceivedAt: now}
	return true
}

// Peer returns the held view of one peer.
func (t *Table) Peer(id ShardID) (PeerView, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.peers[id]
	return v, ok
}

// Peers lists every held peer view, sorted by shard ID for determinism.
func (t *Table) Peers() []PeerView {
	t.mu.RLock()
	out := make([]PeerView, 0, len(t.peers))
	for _, v := range t.peers {
		out = append(out, v)
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Len returns how many peers the table has heard from.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.peers)
}
