package cluster

import (
	"fmt"

	"sync"

	"ivdss/internal/core"
	"ivdss/internal/metrics"
	"ivdss/internal/scheduler"
	"ivdss/internal/stats"
)

// Transport carries one gossip exchange: deliver our digest to a peer and
// return the digest the peer answered with. Implementations must not be
// called under any lock the receiving side's Handle path takes — the live
// transport speaks netproto, the DES transport calls the peer directly.
type Transport interface {
	Exchange(peer ShardID, d Digest) (Digest, error)
}

// GossipConfig wires a gossiper to its clock, transport and state source.
type GossipConfig struct {
	// Self is this node's shard identity.
	Self ShardID
	// Peers are the other shards to gossip with.
	Peers []ShardID
	// Clock schedules rounds; inject SimClock for DES, WallClock live.
	Clock scheduler.Clock
	// Transport performs the exchanges.
	Transport Transport
	// State cuts this node's current digest (called once per round and
	// once per handled incoming exchange). It must bump Digest.Version.
	State func() Digest
	// Interval is the mean gap between rounds, in experiment minutes.
	Interval core.Duration
	// Jitter spreads each gap uniformly over Interval×(1±Jitter) so shards
	// seeded alike do not synchronize their rounds (default 0.25).
	Jitter float64
	// Seed drives the peer choice and jitter stream; same seed, same
	// clock, same schedule.
	Seed int64
	// Until, when positive, stops scheduling rounds whose fire time would
	// pass it. The DES sets it to the workload's end so the simulation's
	// event queue drains; live nodes leave it zero and run until Stop.
	Until core.Time
	// Stats, when set, counts gossip_rounds_total, gossip_failures_total
	// and gossip_merges_total.
	Stats *metrics.Registry
}

func (c GossipConfig) validate() error {
	if c.Clock == nil || c.Transport == nil || c.State == nil {
		return fmt.Errorf("cluster: gossiper needs a clock, a transport, and a state source")
	}
	if c.Interval <= 0 {
		return fmt.Errorf("cluster: gossip interval %v must be positive", c.Interval)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("cluster: gossip jitter %v outside [0, 1)", c.Jitter)
	}
	return nil
}

// Gossiper runs the anti-entropy loop for one node: every
// Interval×(1±Jitter) it picks a random peer, exchanges digests, and
// merges the reply into its peer table. Incoming exchanges are answered
// through Handle. Construct with NewGossiper, then Start.
type Gossiper struct {
	cfg   GossipConfig
	table *Table

	mu      sync.Mutex
	src     *stats.Source
	stopped bool
}

// NewGossiper validates the config and returns an idle gossiper.
func NewGossiper(cfg GossipConfig) (*Gossiper, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.25
	}
	return &Gossiper{
		cfg:   cfg,
		table: NewTable(cfg.Self),
		src:   stats.NewSource(stats.SubSeed(cfg.Seed, fmt.Sprintf("gossip:%d", cfg.Self))),
	}, nil
}

// Table exposes the peer table gossip maintains.
func (g *Gossiper) Table() *Table { return g.table }

// Start schedules the first round. No-op without peers.
func (g *Gossiper) Start() {
	if len(g.cfg.Peers) == 0 {
		return
	}
	g.schedule()
}

// schedule arms the next round unless it would fire past Until.
func (g *Gossiper) schedule() {
	delay := g.nextDelay()
	if g.cfg.Until > 0 && g.cfg.Clock.Now()+core.Time(delay) > g.cfg.Until {
		return
	}
	g.cfg.Clock.AfterFunc(delay, g.round)
}

// Stop prevents further rounds; an in-flight exchange completes.
func (g *Gossiper) Stop() {
	g.mu.Lock()
	g.stopped = true
	g.mu.Unlock()
}

// nextDelay draws the jittered gap before the next round.
func (g *Gossiper) nextDelay() core.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg.Interval * (1 + g.cfg.Jitter*(2*g.src.Float64()-1))
}

// pickPeer draws the round's exchange partner.
func (g *Gossiper) pickPeer() (ShardID, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stopped {
		return 0, false
	}
	return g.cfg.Peers[g.src.Intn(len(g.cfg.Peers))], true
}

// round performs one exchange and schedules the next. The network call
// runs outside every lock.
func (g *Gossiper) round() {
	peer, ok := g.pickPeer()
	if !ok {
		return
	}
	reply, err := g.cfg.Transport.Exchange(peer, g.cfg.State())
	if g.cfg.Stats != nil {
		g.cfg.Stats.Counter("gossip_rounds_total").Inc()
		if err != nil {
			g.cfg.Stats.Counter("gossip_failures_total").Inc()
		}
	}
	if err == nil {
		g.merge(reply)
	}
	g.mu.Lock()
	stopped := g.stopped
	g.mu.Unlock()
	if !stopped {
		g.schedule()
	}
}

// merge folds a digest into the table, counting effective merges.
func (g *Gossiper) merge(d Digest) {
	if g.table.Merge(d, g.cfg.Clock.Now()) && g.cfg.Stats != nil {
		g.cfg.Stats.Counter("gossip_merges_total").Inc()
	}
}

// Handle answers an incoming exchange: merge the remote digest and reply
// with this node's current state. Safe for concurrent use.
func (g *Gossiper) Handle(d Digest) Digest {
	g.merge(d)
	return g.cfg.State()
}
