// Package cluster shards the DSS front-end horizontally: a consistent
// shard map routes queries by accessed-table footprint onto N front-end
// shards (each an embedded scheduler.Engine with its own replica set), an
// anti-entropy gossip layer exchanges breaker state, replica freshness and
// queue depth between shards, work-stealing hands micro-batches from a
// backed-up shard to the least-loaded peer whose replica set covers the
// footprint, and per-tenant IV budgets turn admission control into
// weighted fair shedding.
//
// The routing goal is MQO locality, not key-value balance: overlapping
// queries must land on the same shard so micro-batch multi-query
// optimization keeps finding shared work. Every footprint is therefore
// reduced to a deterministic *anchor* table (the member with the highest
// table hash — under zipf skew the hot tables anchor most of the queries
// that touch them) and the anchor is rendezvous-hashed onto the shard set,
// so queries sharing their hottest table co-locate and resizing the
// cluster moves only the anchors whose rendezvous winner changed.
package cluster

import (
	"fmt"

	"ivdss/internal/core"
	"ivdss/internal/stats"
)

// ShardID numbers a front-end shard (and its gossip identity), 0-based.
type ShardID int

// ShardMap deterministically assigns table footprints to shards. It is
// stateless and safe for concurrent use; every front-end and load
// generator builds the same map from the shard count alone.
type ShardMap struct {
	n int
}

// NewShardMap returns the canonical map over n shards.
func NewShardMap(n int) (*ShardMap, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: shard map needs at least one shard, got %d", n)
	}
	return &ShardMap{n: n}, nil
}

// Shards returns the shard count.
func (m *ShardMap) Shards() int { return m.n }

// mix64 finalizes a hash with murmur3's avalanche rounds. FNV-1a alone
// diffuses too slowly for rendezvous comparisons: over strings differing
// only in a short suffix the high bits are dominated by the shared prefix,
// so one shard's scores would beat every other shard's for all tables.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// tableScore is the fixed per-table hash that picks footprint anchors.
func tableScore(t core.TableID) uint64 {
	return mix64(stats.FNV1a("anchor:" + string(t)))
}

// Anchor reduces a footprint to its anchor table: the member with the
// highest table hash. The choice is independent of table order and of the
// shard count, so two queries sharing their hottest table always share an
// anchor.
func (m *ShardMap) Anchor(tables []core.TableID) core.TableID {
	var anchor core.TableID
	best := uint64(0)
	for i, t := range tables {
		if s := tableScore(t); i == 0 || s > best {
			anchor, best = t, s
		}
	}
	return anchor
}

// Owner returns the shard that owns a table under rendezvous (highest
// random weight) hashing: the shard whose hash with the table wins.
// Adding or removing a shard reassigns only the tables whose winner
// changed.
func (m *ShardMap) Owner(t core.TableID) ShardID {
	best := ShardID(0)
	bestScore := uint64(0)
	for s := 0; s < m.n; s++ {
		score := mix64(stats.FNV1a(fmt.Sprintf("shard:%d:%s", s, t)))
		if s == 0 || score > bestScore {
			best, bestScore = ShardID(s), score
		}
	}
	return best
}

// ShardOf routes a query's table footprint: the rendezvous owner of its
// anchor table. An empty footprint routes to shard 0.
func (m *ShardMap) ShardOf(tables []core.TableID) ShardID {
	if len(tables) == 0 {
		return 0
	}
	return m.Owner(m.Anchor(tables))
}
