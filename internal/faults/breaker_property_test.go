package faults

import (
	"fmt"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/scheduler"
	"ivdss/internal/sim"
)

// The breaker property test exhaustively replays every event sequence up
// to a fixed depth against every small configuration and checks the
// state-machine invariants the rest of the system leans on:
//
//  1. transitions never skip states — only closed→open, open→half-open,
//     half-open→closed, and half-open→open occur;
//  2. the breaker never closes without at least one probe success while
//     half-open;
//  3. while half-open, never more than HalfOpenProbes callers are admitted
//     before an outcome frees a slot;
//  4. while open (timeout not yet expired), no caller is admitted.

// breakerEvent is one step of a driven sequence.
type breakerEvent int

const (
	evAllow   breakerEvent = iota // a caller asks for admission
	evSuccess                     // an admitted caller reports success
	evFailure                     // an admitted caller reports failure
	evTick                        // the open timeout elapses
)

var eventNames = map[breakerEvent]string{
	evAllow: "allow", evSuccess: "success", evFailure: "failure", evTick: "tick",
}

// tickClock abstracts "the open timeout elapses" so the same replay runs
// against the hand-stepped test clock and the discrete event simulator:
// the breaker's window logic must behave identically on both.
type tickClock interface {
	scheduler.Clock
	Tick(d core.Duration)
}

// tickFake adapts fakeClock.
type tickFake struct{ *fakeClock }

func (c tickFake) Tick(d core.Duration) { c.Advance(d) }

// tickSim advances a simulator by scheduling an empty event at +d and
// draining the queue, exactly how DES time moves everywhere else.
type tickSim struct{ scheduler.SimClock }

func (c tickSim) Tick(d core.Duration) {
	c.Sim.Schedule(d, func() {})
	c.Sim.Run()
}

// replay drives a fresh breaker through seq, checking invariants after
// every event. It reports the sequence and config on violation.
func replay(t *testing.T, cfg BreakerConfig, clock tickClock, seq []breakerEvent) {
	t.Helper()
	cfg.Clock = clock
	cfg.OpenTimeout = 1

	type obs struct{ from, to BreakerState }
	var transitions []obs
	cfg.OnTransition = func(from, to BreakerState) {
		transitions = append(transitions, obs{from, to})
	}
	b := NewBreaker(cfg)

	outstanding := 0       // admitted callers that have not reported
	admittedHalfOpen := 0  // admissions since entering half-open
	successesHalfOpen := 0 // probe successes since entering half-open

	fail := func(format string, args ...any) {
		names := make([]string, len(seq))
		for i, e := range seq {
			names[i] = eventNames[e]
		}
		t.Fatalf("cfg{fail=%d probes=%d succ=%d} seq=%v: %s",
			cfg.FailureThreshold, cfg.HalfOpenProbes, cfg.SuccessThreshold,
			names, fmt.Sprintf(format, args...))
	}

	for _, ev := range seq {
		before := b.state // direct read is fine: single-goroutine test
		nTrans := len(transitions)
		switch ev {
		case evAllow:
			admitted := b.Allow()
			if admitted {
				outstanding++
			}
			// Invariant 4: a non-expired open breaker admits nobody. (An
			// expired one legitimately flips to half-open on this Allow.)
			if before == Open && admitted && b.state != HalfOpen {
				fail("open breaker admitted a caller without going half-open")
			}
			if b.state == HalfOpen {
				if len(transitions) > nTrans { // just entered half-open
					admittedHalfOpen = 0
					successesHalfOpen = 0
				}
				if admitted {
					admittedHalfOpen++
				}
				// Invariant 3: bounded probes. Outcomes free slots, so the
				// bound applies to in-flight probes, which the breaker
				// tracks as probes; assert via the admission counter minus
				// reported outcomes happening while half-open.
				if b.probes > cfg.HalfOpenProbes {
					fail("in-flight probes %d exceed cap %d", b.probes, cfg.HalfOpenProbes)
				}
			}
		case evSuccess:
			if outstanding == 0 {
				continue // nothing in flight: event not possible in reality
			}
			outstanding--
			if before == HalfOpen {
				successesHalfOpen++
			}
			b.Success()
		case evFailure:
			if outstanding == 0 {
				continue
			}
			outstanding--
			b.Failure()
		case evTick:
			clock.Tick(cfg.OpenTimeout)
		}

		// Invariant 1: no skipped states.
		for _, tr := range transitions[nTrans:] {
			valid := (tr.from == Closed && tr.to == Open) ||
				(tr.from == Open && tr.to == HalfOpen) ||
				(tr.from == HalfOpen && tr.to == Closed) ||
				(tr.from == HalfOpen && tr.to == Open)
			if !valid {
				fail("illegal transition %v->%v", tr.from, tr.to)
			}
			// Invariant 2: closing requires a half-open probe success.
			if tr.to == Closed && successesHalfOpen == 0 {
				fail("breaker closed without a half-open probe success")
			}
		}
	}
}

func TestBreakerPropertyExhaustive(t *testing.T) {
	events := []breakerEvent{evAllow, evSuccess, evFailure, evTick}
	const depth = 7

	configs := []BreakerConfig{
		{FailureThreshold: 1, HalfOpenProbes: 1, SuccessThreshold: 1},
		{FailureThreshold: 2, HalfOpenProbes: 1, SuccessThreshold: 1},
		{FailureThreshold: 1, HalfOpenProbes: 2, SuccessThreshold: 1},
		{FailureThreshold: 1, HalfOpenProbes: 2, SuccessThreshold: 2},
		{FailureThreshold: 3, HalfOpenProbes: 1, SuccessThreshold: 2},
	}

	clocks := map[string]func() tickClock{
		"manual": func() tickClock { return tickFake{newFakeClock()} },
		"sim":    func() tickClock { return tickSim{scheduler.SimClock{Sim: sim.New()}} },
	}
	for name, mk := range clocks {
		t.Run(name, func(t *testing.T) {
			seq := make([]breakerEvent, depth)
			var walk func(i int, cfg BreakerConfig)
			walk = func(i int, cfg BreakerConfig) {
				if i == depth {
					replay(t, cfg, mk(), seq)
					return
				}
				for _, ev := range events {
					seq[i] = ev
					walk(i+1, cfg)
				}
			}
			for _, cfg := range configs {
				walk(0, cfg)
			}
		})
	}
}
