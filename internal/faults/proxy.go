package faults

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"ivdss/internal/wall"
)

// Mode selects the fault a Proxy injects on new connections.
type Mode int

const (
	// ModePass forwards traffic untouched.
	ModePass Mode = iota
	// ModeDelay forwards traffic after pausing each new connection.
	ModeDelay
	// ModeDrop closes each new connection immediately — a crashed remote
	// whose host still resets the port.
	ModeDrop
	// ModeBlackhole accepts and then never forwards a byte — a hung
	// remote, the worst case for callers without deadlines.
	ModeBlackhole
	// ModeCorrupt forwards traffic but flips bytes on the upstream→client
	// path, so responses fail to decode.
	ModeCorrupt
)

// String names the mode for logs.
func (m Mode) String() string {
	switch m {
	case ModePass:
		return "pass"
	case ModeDelay:
		return "delay"
	case ModeDrop:
		return "drop"
	case ModeBlackhole:
		return "blackhole"
	case ModeCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Proxy is an in-process fault-injecting TCP proxy: it listens locally and
// forwards to a target address, applying the configured fault to each new
// connection with probability Prob, decided by a seeded RNG so a test run
// is reproducible. Mode changes apply to connections accepted afterwards;
// Sever cuts the connections already established (a crash, not a drain).
type Proxy struct {
	target string

	mu    sync.Mutex
	mode  Mode
	delay time.Duration
	prob  float64
	rng   *rand.Rand
	conns map[net.Conn]struct{} // live client-side conns, for Sever

	listener  net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewProxy returns a pass-through proxy toward target whose fault
// decisions replay deterministically for a given seed.
func NewProxy(target string, seed int64) *Proxy {
	return &Proxy{
		target: target,
		prob:   1,
		rng:    rand.New(rand.NewSource(seed)),
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
}

// SetMode switches the fault applied to subsequently accepted
// connections. delay is used by ModeDelay only.
func (p *Proxy) SetMode(m Mode, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mode = m
	p.delay = delay
}

// SetProb sets the probability (0..1) that a new connection is faulted;
// unfaulted connections pass through. Default 1.
func (p *Proxy) SetProb(prob float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.prob = prob
}

// Mode returns the currently configured fault mode.
func (p *Proxy) Mode() Mode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mode
}

// Listen binds the proxy (use "127.0.0.1:0" for an ephemeral port) and
// starts accepting in the background. It returns the bound address.
func (p *Proxy) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("faults: proxy listen %s: %w", addr, err)
	}
	p.listener = l
	p.wg.Add(1)
	go p.acceptLoop()
	return l.Addr().String(), nil
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		raw, err := p.listener.Accept()
		if err != nil {
			select {
			case <-p.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			log.Printf("faults: proxy accept: %v", err)
			continue
		}
		p.mu.Lock()
		mode, delay := p.mode, p.delay
		if p.prob < 1 && p.rng.Float64() >= p.prob {
			mode = ModePass
		}
		p.conns[raw] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.forget(raw)
			p.serve(raw, mode, delay)
		}()
	}
}

func (p *Proxy) forget(c net.Conn) {
	_ = c.Close() // teardown of a tracked conn; reset-on-close is the point
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) serve(client net.Conn, mode Mode, delay time.Duration) {
	switch mode {
	case ModeDrop:
		return // forget closes the client side
	case ModeBlackhole:
		<-p.closed // hold the connection open, forward nothing
		return
	case ModeDelay:
		select {
		case <-wall.After(delay):
		case <-p.closed:
			return
		}
	}

	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return // client sees a reset, like a dead remote
	}
	p.mu.Lock()
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()
	defer p.forget(upstream)

	done := make(chan struct{}, 2)
	go func() {
		_, _ = io.Copy(upstream, client)
		// Half-close toward the remote so its read loop sees EOF.
		if tc, ok := upstream.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		if mode == ModeCorrupt {
			_, _ = io.Copy(client, &corruptReader{r: upstream})
		} else {
			_, _ = io.Copy(client, upstream)
		}
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// Either direction finishing (or proxy shutdown) tears the pair down;
	// the deferred forget and the caller's forget close both conns, which
	// unblocks the remaining copier.
	select {
	case <-done:
	case <-p.closed:
	}
}

// corruptReader flips the low bit of every 7th byte, enough to break gob
// framing deterministically without stalling the stream.
type corruptReader struct {
	r io.Reader
	n int
}

func (c *corruptReader) Read(b []byte) (int, error) {
	n, err := c.r.Read(b)
	for i := 0; i < n; i++ {
		if (c.n+i)%7 == 0 {
			b[i] ^= 1
		}
	}
	c.n += n
	return n, err
}

// Sever closes every established connection through the proxy, simulating
// a crash of the link. New connections still follow the current mode.
func (p *Proxy) Sever() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		//lint:allow detordercheck(closing every tracked conn commutes; net.Conn has no sort key)
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close() // severing the link: reset-on-close is the point
	}
}

// Addr returns the proxy's bound address (after Listen).
func (p *Proxy) Addr() string {
	if p.listener == nil {
		return ""
	}
	return p.listener.Addr().String()
}

// Close stops the listener and severs all connections. It is idempotent.
func (p *Proxy) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.closed)
		if p.listener != nil {
			err = p.listener.Close()
		}
		p.Sever()
		p.wg.Wait()
	})
	return err
}
