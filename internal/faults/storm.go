package faults

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ivdss/internal/wall"
)

// Window schedules one outage of a named target relative to the driver's
// start instant: the target is down in [Start, End).
type Window struct {
	Target string
	Start  time.Duration
	End    time.Duration
}

// StormDriver replays a precomputed outage schedule against fault
// proxies on the wall clock: when a window opens, the target's proxy
// drops new connections and severs established ones (a site crash); when
// the last window covering a target closes, the proxy passes traffic
// again (the site rebooted). It is the live-mode twin of the DES's
// catalog BaseDown overlay — both consume the same generated schedule,
// scaled from experiment minutes to wall time by the caller.
type StormDriver struct {
	proxies map[string]*Proxy
	windows []Window

	mu     sync.Mutex
	down   map[string]int // overlapping-window refcount per target
	timers []*time.Timer
	run    bool
}

// NewStormDriver validates that every window names a known proxy and has
// a non-empty span. The schedule may overlap windows on one target.
func NewStormDriver(proxies map[string]*Proxy, windows []Window) (*StormDriver, error) {
	for _, w := range windows {
		if _, ok := proxies[w.Target]; !ok {
			return nil, fmt.Errorf("faults: storm window names unknown target %q", w.Target)
		}
		if w.Start < 0 || w.End <= w.Start {
			return nil, fmt.Errorf("faults: storm window for %q has empty span [%v, %v)", w.Target, w.Start, w.End)
		}
	}
	sorted := make([]Window, len(windows))
	copy(sorted, windows)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	return &StormDriver{
		proxies: proxies,
		windows: sorted,
		down:    make(map[string]int),
	}, nil
}

// Start arms one timer per window edge. It may be called once.
func (d *StormDriver) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.run {
		return
	}
	d.run = true
	for _, w := range d.windows {
		w := w
		d.timers = append(d.timers,
			wall.AfterFunc(w.Start, func() { d.open(w.Target) }),
			wall.AfterFunc(w.End, func() { d.close(w.Target) }),
		)
	}
}

// open marks one window on target active, crashing its proxy on the
// first overlapping window.
func (d *StormDriver) open(target string) {
	d.mu.Lock()
	d.down[target]++
	first := d.down[target] == 1
	p := d.proxies[target]
	d.mu.Unlock()
	if first {
		p.SetMode(ModeDrop, 0)
		p.Sever()
	}
}

// close retires one window on target, restoring traffic when no window
// still covers it.
func (d *StormDriver) close(target string) {
	d.mu.Lock()
	if d.down[target] > 0 {
		d.down[target]--
	}
	last := d.down[target] == 0
	p := d.proxies[target]
	d.mu.Unlock()
	if last {
		p.SetMode(ModePass, 0)
	}
}

// Down lists the targets currently inside an active window, sorted.
func (d *StormDriver) Down() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for t, n := range d.down {
		if n > 0 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Stop cancels pending window edges and restores every target to
// pass-through. Windows already open are closed immediately.
func (d *StormDriver) Stop() {
	d.mu.Lock()
	timers := d.timers
	d.timers = nil
	targets := make([]string, 0, len(d.down))
	for t := range d.down {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	var restore []*Proxy
	for _, t := range targets {
		if d.down[t] > 0 {
			restore = append(restore, d.proxies[t])
		}
		d.down[t] = 0
	}
	d.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	for _, p := range restore {
		p.SetMode(ModePass, 0)
	}
}
