// Package faults is the fault-tolerance toolkit for the DSS's remote I/O:
// a per-site circuit breaker that stops hammering a dead branch server and
// re-admits traffic through half-open probes, and a deterministic
// fault-injecting TCP proxy used by the chaos tests to delay, drop,
// corrupt, or black-hole connections under a seeded RNG.
package faults

import (
	"fmt"
	"sync"

	"ivdss/internal/core"
	"ivdss/internal/scheduler"
)

// BreakerState is one of the circuit breaker's three states.
type BreakerState int

const (
	// Closed admits every call; consecutive transport failures trip it.
	Closed BreakerState = iota
	// HalfOpen admits a bounded number of probe calls after the open
	// timeout; a probe success closes the breaker, a failure re-opens it.
	HalfOpen
	// Open rejects every call until the open timeout elapses.
	Open
)

// String names the state for logs and status output.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig parameterizes a Breaker. Zero values take defaults,
// except Clock, which is required.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip a closed
	// breaker. Default 3.
	FailureThreshold int
	// OpenTimeout is how long an open breaker rejects before admitting
	// half-open probes, in experiment minutes on Clock. Default 1/12 of a
	// minute (5 wall seconds at real-time scale).
	OpenTimeout core.Duration
	// HalfOpenProbes caps concurrently admitted probes while half-open.
	// Default 1.
	HalfOpenProbes int
	// SuccessThreshold is how many probe successes close a half-open
	// breaker. Default 1.
	SuccessThreshold int
	// Clock supplies the breaker's notion of now. Required: the live
	// server passes its scaled WallClock, the DES passes SimClock, tests
	// hand-step a ManualClock — the open/half-open window logic is
	// identical on all three.
	Clock scheduler.Clock
	// OnTransition, when set, observes every state change under the
	// breaker's lock — keep it fast and do not call back into the breaker.
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 1.0 / 12
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 1
	}
	return c
}

// Breaker is a circuit breaker: closed → open on consecutive failures,
// open → half-open after a timeout, half-open → closed on probe success or
// back to open on probe failure. Safe for concurrent use. Callers gate
// each remote call on Allow and report the outcome with Success or
// Failure; only transport-level failures should be reported — a remote
// that answers with an application error is alive.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	failures int       // consecutive failures while closed
	probes   int       // probes admitted and still in flight while half-open
	okProbes int       // probe successes while half-open
	openedAt core.Time // when the breaker last opened
}

// NewBreaker returns a closed breaker. It panics without a Clock: a
// breaker that reads wall time directly cannot run under the DES, which
// is the whole point of injecting one.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Clock == nil {
		panic("faults: BreakerConfig.Clock is required")
	}
	return &Breaker{cfg: cfg.withDefaults()}
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	switch to {
	case Open:
		b.openedAt = b.cfg.Clock.Now()
	case HalfOpen:
		b.probes = 0
		b.okProbes = 0
	case Closed:
		b.failures = 0
	}
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

// Allow reports whether a call may proceed. While half-open, an admitted
// caller holds one of the bounded probe slots and MUST report Success or
// Failure to release it.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Clock.Now()-b.openedAt < b.cfg.OpenTimeout {
			return false
		}
		b.transition(HalfOpen)
		b.probes = 1
		return true
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	default:
		return false
	}
}

// Success reports a completed call that reached the remote.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		b.okProbes++
		if b.okProbes >= b.cfg.SuccessThreshold {
			b.transition(Closed)
		}
	case Open:
		// A straggler admitted before the trip; the timeout, not one stale
		// success, decides when to probe again.
	}
}

// Failure reports a transport-level failure.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.transition(Open)
		}
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		b.transition(Open)
	case Open:
		// Stragglers do not extend the open window: openedAt stays put so
		// recovery probing is not starved by a burst of queued failures.
	}
}

// State returns the current state, first promoting an expired open breaker
// to half-open so status reporting matches what Allow would do.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Clock.Now()-b.openedAt >= b.cfg.OpenTimeout {
		return HalfOpen
	}
	return b.state
}

// Failures returns the consecutive transport failures since the last
// success (meaningful while closed).
func (b *Breaker) Failures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures
}

// OpenError is returned by call sites whose breaker rejected the call.
type OpenError struct {
	// Key identifies the protected resource (e.g. "site 2").
	Key string
}

// Error implements the error interface.
func (e *OpenError) Error() string {
	return fmt.Sprintf("faults: circuit breaker open for %s", e.Key)
}
