package faults

import (
	"sync"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/scheduler"
)

// fakeClock is a manually advanced scheduler.Clock for deterministic
// breaker tests. Unlike scheduler.ManualClock it is safe for concurrent
// use, which the -race traffic tests need.
type fakeClock struct {
	mu sync.Mutex
	t  core.Time
}

var _ scheduler.Clock = (*fakeClock)(nil)

func newFakeClock() *fakeClock { return &fakeClock{} }

func (c *fakeClock) Now() core.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// AfterFunc is unused by the breaker: it only ever asks for "now".
func (c *fakeClock) AfterFunc(core.Duration, func()) {
	panic("fakeClock: breaker must not arm timers")
}

func (c *fakeClock) Advance(d core.Duration) {
	c.mu.Lock()
	c.t += d
	c.mu.Unlock()
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: 1, Clock: clock})

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Failure()
	}
	// A success resets the consecutive count.
	b.Success()
	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after 2 failures post-reset, want closed", b.State())
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Error("open breaker admitted a call")
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	clock := newFakeClock()
	var transitions []string
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		OpenTimeout:      1,
		Clock:            clock,
		OnTransition: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})
	b.Failure() // trips immediately
	if b.Allow() {
		t.Fatal("open breaker admitted a call before the timeout")
	}
	clock.Advance(1)
	if !b.Allow() {
		t.Fatal("expired open breaker rejected the probe")
	}
	// Only one probe may be in flight.
	if b.Allow() {
		t.Error("second concurrent probe admitted")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %s, want %s", i, transitions[i], want[i])
		}
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: 1, Clock: clock})
	b.Failure()
	clock.Advance(1)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v after probe failure, want open", b.State())
	}
	// The open window restarts from the failed probe.
	if b.Allow() {
		t.Error("re-opened breaker admitted a call immediately")
	}
	clock.Advance(1)
	if !b.Allow() {
		t.Error("re-opened breaker never recovered")
	}
}

func TestBreakerSuccessThreshold(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		OpenTimeout:      1,
		HalfOpenProbes:   2,
		SuccessThreshold: 2,
		Clock:            clock,
	})
	b.Failure()
	clock.Advance(1)
	if !b.Allow() {
		t.Fatal("first probe rejected")
	}
	b.Success()
	if b.State() == Closed {
		t.Fatal("closed after one probe success, want two")
	}
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v after two probe successes", b.State())
	}
}

// TestBreakerConcurrentProbes exercises the half-open probe cap under
// concurrency (run with -race): of many simultaneous callers, at most
// HalfOpenProbes are admitted.
func TestBreakerConcurrentProbes(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		OpenTimeout:      1,
		HalfOpenProbes:   2,
		SuccessThreshold: 100, // keep it half-open while probes succeed
		Clock:            clock,
	})
	b.Failure()
	clock.Advance(1)

	var wg sync.WaitGroup
	admitted := make(chan bool, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			admitted <- b.Allow()
		}()
	}
	wg.Wait()
	close(admitted)
	n := 0
	for ok := range admitted {
		if ok {
			n++
		}
	}
	if n != 2 {
		t.Errorf("admitted %d concurrent probes, want exactly 2", n)
	}
}

// TestBreakerConcurrentTraffic hammers a breaker from many goroutines
// while the clock advances, for the race detector.
func TestBreakerConcurrentTraffic(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: .001, Clock: clock})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		fail := i%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if fail {
						b.Failure()
					} else {
						b.Success()
					}
				}
				if j%50 == 0 {
					clock.Advance(.001)
				}
				_ = b.State()
				_ = b.Failures()
			}
		}()
	}
	wg.Wait()
}
