package faults

import (
	"testing"
	"time"
)

// waitMode polls until the proxy reports mode m or the deadline passes.
func waitMode(t *testing.T, p *Proxy, m Mode, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.Mode() == m {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s: proxy mode %v, want %v", what, p.Mode(), m)
}

func TestStormDriverTogglesProxies(t *testing.T) {
	a := NewProxy("127.0.0.1:1", 1)
	b := NewProxy("127.0.0.1:1", 2)
	drv, err := NewStormDriver(map[string]*Proxy{"site1": a, "site2": b}, []Window{
		{Target: "site1", Start: 10 * time.Millisecond, End: 60 * time.Millisecond},
		// Overlapping windows on site2: it must stay down until the last
		// window closes.
		{Target: "site2", Start: 10 * time.Millisecond, End: 40 * time.Millisecond},
		{Target: "site2", Start: 20 * time.Millisecond, End: 90 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Mode() != ModePass || b.Mode() != ModePass {
		t.Fatal("proxies not pass-through before Start")
	}
	drv.Start()
	defer drv.Stop()

	waitMode(t, a, ModeDrop, "site1 storm open")
	waitMode(t, b, ModeDrop, "site2 storm open")
	if down := drv.Down(); len(down) != 2 {
		t.Errorf("Down() = %v mid-storm, want both sites", down)
	}

	waitMode(t, a, ModePass, "site1 storm close")
	// site2's first window has closed by now, but the second still holds
	// it down — then it recovers.
	waitMode(t, b, ModePass, "site2 overlapping close")
	if down := drv.Down(); len(down) != 0 {
		t.Errorf("Down() = %v after recovery, want none", down)
	}
}

func TestStormDriverStopRestores(t *testing.T) {
	p := NewProxy("127.0.0.1:1", 1)
	drv, err := NewStormDriver(map[string]*Proxy{"s": p}, []Window{
		{Target: "s", Start: time.Millisecond, End: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	drv.Start()
	waitMode(t, p, ModeDrop, "open")
	drv.Stop()
	waitMode(t, p, ModePass, "stop restore")
}

func TestStormDriverValidates(t *testing.T) {
	p := NewProxy("127.0.0.1:1", 1)
	if _, err := NewStormDriver(map[string]*Proxy{"s": p}, []Window{{Target: "t", Start: 0, End: time.Second}}); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := NewStormDriver(map[string]*Proxy{"s": p}, []Window{{Target: "s", Start: time.Second, End: time.Second}}); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := NewStormDriver(map[string]*Proxy{"s": p}, []Window{{Target: "s", Start: -time.Second, End: time.Second}}); err == nil {
		t.Error("negative start accepted")
	}
}
