package faults

import (
	"errors"
	"net"
	"testing"
	"time"

	"ivdss/internal/netproto"
)

// startEcho runs a minimal netproto server that answers KindPing.
func startEcho(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				conn := netproto.NewConn(raw)
				defer conn.Close()
				for {
					if _, err := conn.ReadRequest(); err != nil {
						return
					}
					if err := conn.WriteResponse(&netproto.Response{}); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

func startProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p := NewProxy(target, 42)
	if _, err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestProxyPassThrough(t *testing.T) {
	p := startProxy(t, startEcho(t))
	resp, err := netproto.Call(p.Addr(), &netproto.Request{Kind: netproto.KindPing}, time.Second)
	if err != nil || resp.Err != "" {
		t.Fatalf("pass-through ping: %v %v", err, resp)
	}
}

func TestProxyDelay(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetMode(ModeDelay, 80*time.Millisecond)
	start := time.Now()
	if _, err := netproto.Call(p.Addr(), &netproto.Request{Kind: netproto.KindPing}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 70*time.Millisecond {
		t.Errorf("delayed call returned in %v", elapsed)
	}
}

func TestProxyDrop(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetMode(ModeDrop, 0)
	if _, err := netproto.Call(p.Addr(), &netproto.Request{Kind: netproto.KindPing}, time.Second); err == nil {
		t.Fatal("call through dropping proxy succeeded")
	}
}

func TestProxyBlackholeTimesOut(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetMode(ModeBlackhole, 0)
	start := time.Now()
	_, err := netproto.Call(p.Addr(), &netproto.Request{Kind: netproto.KindPing}, 150*time.Millisecond)
	if err == nil {
		t.Fatal("call through black-holed proxy succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("black-holed call took %v", elapsed)
	}
}

func TestProxyCorruptBreaksDecoding(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetMode(ModeCorrupt, 0)
	if _, err := netproto.Call(p.Addr(), &netproto.Request{Kind: netproto.KindPing}, time.Second); err == nil {
		t.Fatal("corrupted response decoded cleanly")
	}
}

func TestProxySeverCutsEstablishedConns(t *testing.T) {
	p := startProxy(t, startEcho(t))
	conn, err := netproto.Dial(p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetTimeout(time.Second)
	if _, err := conn.RoundTrip(&netproto.Request{Kind: netproto.KindPing}); err != nil {
		t.Fatal(err)
	}
	p.Sever()
	if _, err := conn.RoundTrip(&netproto.Request{Kind: netproto.KindPing}); err == nil {
		t.Fatal("round trip over severed connection succeeded")
	}
	// New connections still pass.
	if _, err := netproto.Call(p.Addr(), &netproto.Request{Kind: netproto.KindPing}, time.Second); err != nil {
		t.Fatalf("fresh connection after sever: %v", err)
	}
}

func TestProxyProbabilisticFaultsDeterministicUnderSeed(t *testing.T) {
	run := func() []bool {
		echo := startEcho(t)
		p := NewProxy(echo, 7)
		if _, err := p.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		p.SetMode(ModeDrop, 0)
		p.SetProb(.5)
		var outcomes []bool
		for i := 0; i < 12; i++ {
			_, err := netproto.Call(p.Addr(), &netproto.Request{Kind: netproto.KindPing}, time.Second)
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs between seeded runs: %v vs %v", i, a, b)
		}
	}
	// The 50% drop mode must actually produce both outcomes.
	saw := map[bool]bool{}
	for _, ok := range a {
		saw[ok] = true
	}
	if !saw[true] || !saw[false] {
		t.Errorf("outcomes not mixed: %v", a)
	}
}
