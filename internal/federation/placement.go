// Package federation models the hybrid architecture of the paper: a local
// DSS/federation server (site 0) communicating with N remote servers that
// hold the base tables, with a subset of tables replicated locally.
//
// It provides table placement (uniform and the paper's skewed 1/2, 1/4,
// 1/8 ... distribution), the catalog the planner consumes (placement +
// replication state), and an execution engine that evaluates a chosen plan
// over live relation data — local replicas for replica accesses, per-site
// fetches for base accesses.
package federation

import (
	"fmt"
	"slices"
	"sort"

	"ivdss/internal/core"
	"ivdss/internal/stats"
)

// Placement maps every base table to its remote site.
type Placement struct {
	siteOf map[core.TableID]core.SiteID
	nSites int
}

// NewPlacement builds a placement from an explicit assignment. Sites must
// be remote (>= 1).
func NewPlacement(siteOf map[core.TableID]core.SiteID) (*Placement, error) {
	// Validate in sorted order so the reported offender is deterministic.
	ids := make([]core.TableID, 0, len(siteOf))
	for id := range siteOf {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	maxSite := core.SiteID(0)
	cp := make(map[core.TableID]core.SiteID, len(siteOf))
	for _, id := range ids {
		s := siteOf[id]
		if s < 1 {
			return nil, fmt.Errorf("federation: table %s placed on non-remote site %d", id, s)
		}
		maxSite = max(maxSite, s)
		cp[id] = s
	}
	return &Placement{siteOf: cp, nSites: int(maxSite)}, nil
}

// UniformPlacement spreads tables across sites 1..nSites round-robin after
// a seeded shuffle — the paper's "uniform" distribution.
func UniformPlacement(tables []core.TableID, nSites int, seed int64) (*Placement, error) {
	if nSites < 1 {
		return nil, fmt.Errorf("federation: need at least one remote site, got %d", nSites)
	}
	src := stats.NewSource(seed)
	order := src.Perm(len(tables))
	siteOf := make(map[core.TableID]core.SiteID, len(tables))
	for i, idx := range order {
		siteOf[tables[idx]] = core.SiteID(1 + i%nSites)
	}
	return &Placement{siteOf: siteOf, nSites: nSites}, nil
}

// SkewedPlacement implements the paper's skew: half the tables on site 1,
// a quarter on site 2, an eighth on site 3, ..., with the geometric tail
// landing on the last site.
func SkewedPlacement(tables []core.TableID, nSites int, seed int64) (*Placement, error) {
	if nSites < 1 {
		return nil, fmt.Errorf("federation: need at least one remote site, got %d", nSites)
	}
	src := stats.NewSource(seed)
	order := src.Perm(len(tables))
	siteOf := make(map[core.TableID]core.SiteID, len(tables))
	// Quota per site s (1-based): ceil(n / 2^s), remainder to the last site.
	idx := 0
	remaining := len(tables)
	for s := 1; s <= nSites && remaining > 0; s++ {
		quota := (remaining + 1) / 2
		if s == nSites {
			quota = remaining
		}
		for q := 0; q < quota; q++ {
			siteOf[tables[order[idx]]] = core.SiteID(s)
			idx++
		}
		remaining -= quota
	}
	return &Placement{siteOf: siteOf, nSites: nSites}, nil
}

// SiteOf returns the remote site holding the table's base data.
func (p *Placement) SiteOf(id core.TableID) (core.SiteID, error) {
	s, ok := p.siteOf[id]
	if !ok {
		return 0, fmt.Errorf("federation: table %s not placed", id)
	}
	return s, nil
}

// NumSites returns the number of remote sites.
func (p *Placement) NumSites() int { return p.nSites }

// Tables returns all placed tables, sorted.
func (p *Placement) Tables() []core.TableID {
	ids := make([]core.TableID, 0, len(p.siteOf))
	for id := range p.siteOf {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TablesAt returns the tables placed on one site, sorted.
func (p *Placement) TablesAt(site core.SiteID) []core.TableID {
	var ids []core.TableID
	for id, s := range p.siteOf {
		if s == site {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ChooseReplicas picks k tables (seeded, without replacement) to replicate
// locally — the paper "randomly select[s] 5 out of 12 tables into the
// replication plan" and "randomly select[s] 50 replications to local site".
func ChooseReplicas(tables []core.TableID, k int, seed int64) ([]core.TableID, error) {
	if k < 0 || k > len(tables) {
		return nil, fmt.Errorf("federation: cannot choose %d replicas from %d tables", k, len(tables))
	}
	sorted := make([]core.TableID, len(tables))
	copy(sorted, tables)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	src := stats.NewSource(seed)
	picked := src.PickN(len(sorted), k)
	out := make([]core.TableID, k)
	for i, idx := range picked {
		out[i] = sorted[idx]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
