package federation

import (
	"context"
	"errors"
	"testing"
	"time"

	"ivdss/internal/core"
)

func TestExecutePlanContextCancelledUpFront(t *testing.T) {
	_, engine, mgr := buildTestWorld(t)
	mgr.Advance(0)

	q := core.Query{ID: "q", Tables: []core.TableID{"trades"}, BusinessValue: 1}
	plan := core.Plan{Query: q, Access: []core.TableAccess{
		{Table: "trades", Site: 2, Kind: core.AccessBase},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := engine.ExecutePlanContext(ctx, "SELECT t_account FROM trades", plan)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled plan: %v, want context.Canceled", err)
	}
}

func TestExecutePlanContextInterruptsNetworkDelay(t *testing.T) {
	_, engine, mgr := buildTestWorld(t)
	mgr.Advance(0)
	// A long simulated network wait per base access: a deadline shorter than
	// one wait must abort mid-delay, not after it.
	engine.SetNetworkDelay(5 * time.Second)

	q := core.Query{ID: "q", Tables: []core.TableID{"trades"}, BusinessValue: 1}
	plan := core.Plan{Query: q, Access: []core.TableAccess{
		{Table: "trades", Site: 2, Kind: core.AccessBase},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := engine.ExecutePlanContext(ctx, "SELECT t_account FROM trades", plan)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Errorf("abort took %v, want well under the 5s simulated delay", elapsed)
	}
}

func TestExecutePlanContextCarriesCause(t *testing.T) {
	_, engine, mgr := buildTestWorld(t)
	mgr.Advance(0)
	engine.SetNetworkDelay(5 * time.Second)

	q := core.Query{ID: "q", Tables: []core.TableID{"trades"}, BusinessValue: 1}
	plan := core.Plan{Query: q, Access: []core.TableAccess{
		{Table: "trades", Site: 2, Kind: core.AccessBase},
	}}
	expired := &core.ValueExpiredError{Query: "q", Horizon: 1, Reason: "expired-running"}
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel(expired)
	}()
	_, err := engine.ExecutePlanContext(ctx, "SELECT t_account FROM trades", plan)
	var vee *core.ValueExpiredError
	if !errors.As(err, &vee) {
		t.Fatalf("error %v, want the ValueExpiredError cause", err)
	}
	if vee.Reason != "expired-running" {
		t.Errorf("cause reason %q", vee.Reason)
	}
}
