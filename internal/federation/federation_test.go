package federation

import (
	"testing"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/relation"
	"ivdss/internal/replication"
)

func tableIDs(n int) []core.TableID {
	ids := make([]core.TableID, n)
	for i := range ids {
		ids[i] = core.TableID(rune('a'+i%26)) + core.TableID(rune('0'+i/26))
	}
	return ids
}

func TestUniformPlacement(t *testing.T) {
	ids := tableIDs(100)
	p, err := UniformPlacement(ids, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[core.SiteID]int)
	for _, id := range ids {
		s, err := p.SiteOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if s < 1 || s > 10 {
			t.Fatalf("site %d out of range", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c != 10 {
			t.Errorf("site %d holds %d tables, want 10", s, c)
		}
	}
	if p.NumSites() != 10 {
		t.Errorf("NumSites = %d", p.NumSites())
	}
}

func TestSkewedPlacement(t *testing.T) {
	ids := tableIDs(64)
	p, err := SkewedPlacement(ids, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[core.SiteID]int)
	for _, id := range ids {
		s, _ := p.SiteOf(id)
		counts[s]++
	}
	// 1/2, 1/4, 1/8 ... : 32, 16, 8, 4, 2, 2 (tail on last site).
	want := []int{32, 16, 8, 4, 2, 2}
	for i, w := range want {
		if counts[core.SiteID(i+1)] != w {
			t.Errorf("site %d holds %d, want %d (all: %v)", i+1, counts[core.SiteID(i+1)], w, counts)
			break
		}
	}
}

func TestSkewedPlacementFewTables(t *testing.T) {
	ids := tableIDs(3)
	p, err := SkewedPlacement(ids, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := p.SiteOf(id); err != nil {
			t.Errorf("table %s unplaced: %v", id, err)
		}
	}
}

func TestPlacementErrors(t *testing.T) {
	if _, err := UniformPlacement(tableIDs(3), 0, 1); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := SkewedPlacement(tableIDs(3), 0, 1); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := NewPlacement(map[core.TableID]core.SiteID{"a": 0}); err == nil {
		t.Error("placement on local site accepted")
	}
	p, err := NewPlacement(map[core.TableID]core.SiteID{"a": 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SiteOf("missing"); err == nil {
		t.Error("unplaced table lookup succeeded")
	}
}

func TestTablesAt(t *testing.T) {
	p, err := NewPlacement(map[core.TableID]core.SiteID{"x": 1, "a": 1, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	got := p.TablesAt(1)
	if len(got) != 2 || got[0] != "a" || got[1] != "x" {
		t.Errorf("TablesAt(1) = %v", got)
	}
}

func TestChooseReplicas(t *testing.T) {
	ids := tableIDs(12)
	picked, err := ChooseReplicas(ids, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 5 {
		t.Fatalf("picked %d", len(picked))
	}
	seen := make(map[core.TableID]bool)
	for _, id := range picked {
		if seen[id] {
			t.Errorf("duplicate %s", id)
		}
		seen[id] = true
	}
	again, _ := ChooseReplicas(ids, 5, 7)
	for i := range picked {
		if picked[i] != again[i] {
			t.Error("not deterministic")
		}
	}
	if _, err := ChooseReplicas(ids, 13, 7); err == nil {
		t.Error("oversubscription accepted")
	}
}

func buildTestWorld(t *testing.T) (*Catalog, *Engine, *replication.Manager) {
	t.Helper()
	placement, err := NewPlacement(map[core.TableID]core.SiteID{
		"accounts": 1,
		"trades":   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := replication.NewManager()
	if err := mgr.Register("accounts", replication.Schedule{Times: []core.Time{0, 10, 20}}); err != nil {
		t.Fatal(err)
	}
	catalog, err := NewCatalog(placement, mgr)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(catalog)
	if err != nil {
		t.Fatal(err)
	}

	accounts := relation.NewTable("accounts", relation.MustSchema(
		relation.Column{Name: "a_id", Type: relation.Int},
		relation.Column{Name: "a_balance", Type: relation.Float},
	))
	accounts.MustInsert(relation.Row{relation.IntVal(1), relation.FloatVal(100)})
	accounts.MustInsert(relation.Row{relation.IntVal(2), relation.FloatVal(250)})
	trades := relation.NewTable("trades", relation.MustSchema(
		relation.Column{Name: "t_account", Type: relation.Int},
		relation.Column{Name: "t_amount", Type: relation.Float},
	))
	trades.MustInsert(relation.Row{relation.IntVal(1), relation.FloatVal(30)})
	trades.MustInsert(relation.Row{relation.IntVal(2), relation.FloatVal(-70)})
	trades.MustInsert(relation.Row{relation.IntVal(1), relation.FloatVal(5)})

	if err := engine.Distribute(map[string]*relation.Table{"accounts": accounts, "trades": trades}); err != nil {
		t.Fatal(err)
	}
	return catalog, engine, mgr
}

func TestCatalogSnapshot(t *testing.T) {
	catalog, _, _ := buildTestWorld(t)
	snap, err := catalog.Snapshot([]core.TableID{"accounts", "trades"}, 12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if snap[0].Site != 1 || snap[1].Site != 2 {
		t.Errorf("sites = %d, %d", snap[0].Site, snap[1].Site)
	}
	if snap[0].Replica == nil {
		t.Fatal("accounts should have a replica state")
	}
	if snap[0].Replica.LastSync != 10 {
		t.Errorf("LastSync = %v, want 10", snap[0].Replica.LastSync)
	}
	if len(snap[0].Replica.NextSyncs) != 1 || snap[0].Replica.NextSyncs[0] != 20 {
		t.Errorf("NextSyncs = %v", snap[0].Replica.NextSyncs)
	}
	if snap[1].Replica != nil {
		t.Error("trades should not have a replica state")
	}
	if _, err := catalog.Snapshot([]core.TableID{"missing"}, 0, 0); err == nil {
		t.Error("unknown table accepted")
	}
	all, err := catalog.SnapshotAll(12, 0)
	if err != nil || len(all) != 2 {
		t.Errorf("SnapshotAll = %v, %v", all, err)
	}
}

func TestNewCatalogRejectsUnplacedReplica(t *testing.T) {
	placement, _ := NewPlacement(map[core.TableID]core.SiteID{"a": 1})
	mgr := replication.NewManager()
	if err := mgr.Register("ghost", replication.Schedule{}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCatalog(placement, mgr); err == nil {
		t.Error("replicated-but-unplaced table accepted")
	}
}

func TestEngineExecutePlanBaseAndReplica(t *testing.T) {
	_, engine, mgr := buildTestWorld(t)
	mgr.Advance(0) // first sync copies accounts into the replica store

	q := core.Query{ID: "q", Tables: []core.TableID{"accounts", "trades"}, BusinessValue: 1}
	sql := `SELECT a.a_id, a.a_balance + sum(tr.t_amount) AS exposure
	        FROM accounts a, trades tr
	        WHERE a.a_id = tr.t_account
	        GROUP BY a.a_id, a.a_balance ORDER BY a.a_id`

	plan := core.Plan{Query: q, Access: []core.TableAccess{
		{Table: "accounts", Site: 1, Kind: core.AccessReplica, Freshness: 0},
		{Table: "trades", Site: 2, Kind: core.AccessBase},
	}}
	out, err := engine.ExecutePlan(sql, plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if out.Rows[0][1].F != 135 || out.Rows[1][1].F != 180 {
		t.Errorf("exposures = %v, %v", out.Rows[0][1], out.Rows[1][1])
	}
}

func TestEngineReplicaIsSnapshotNotLive(t *testing.T) {
	_, engine, mgr := buildTestWorld(t)
	mgr.Advance(0)

	// Mutate the base table after the sync: the replica must not see it.
	site := engine.sites[1]
	base, _ := site.Table("accounts")
	base.MustInsert(relation.Row{relation.IntVal(3), relation.FloatVal(999)})

	replica, err := engine.Replica("accounts")
	if err != nil {
		t.Fatal(err)
	}
	if replica.NumRows() != 2 {
		t.Errorf("replica rows = %d, want 2 (pre-mutation snapshot)", replica.NumRows())
	}

	// After the next sync the replica catches up.
	mgr.Advance(10)
	replica, _ = engine.Replica("accounts")
	if replica.NumRows() != 3 {
		t.Errorf("replica rows = %d, want 3 after sync", replica.NumRows())
	}
}

func TestEngineExecutePlanErrors(t *testing.T) {
	_, engine, _ := buildTestWorld(t)
	q := core.Query{ID: "q", Tables: []core.TableID{"accounts"}, BusinessValue: 1}

	// Replica access before any sync: no snapshot.
	plan := core.Plan{Query: q, Access: []core.TableAccess{
		{Table: "accounts", Site: 1, Kind: core.AccessReplica},
	}}
	if _, err := engine.ExecutePlan("SELECT a_id FROM accounts", plan); err == nil {
		t.Error("replica access without snapshot accepted")
	}

	// Missing access decision.
	if _, err := engine.ExecutePlan("SELECT a_id FROM accounts", core.Plan{Query: q}); err == nil {
		t.Error("plan without access decisions accepted")
	}

	// Unknown site.
	plan = core.Plan{Query: q, Access: []core.TableAccess{
		{Table: "accounts", Site: 9, Kind: core.AccessBase},
	}}
	if _, err := engine.ExecutePlan("SELECT a_id FROM accounts", plan); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestEngineDistributeErrors(t *testing.T) {
	catalog, engine, _ := buildTestWorld(t)
	_ = catalog
	// Unplaced table.
	ghost := relation.NewTable("ghost", relation.MustSchema(relation.Column{Name: "x", Type: relation.Int}))
	if err := engine.Distribute(map[string]*relation.Table{"ghost": ghost}); err == nil {
		t.Error("unplaced table distributed")
	}
	// Duplicate install.
	acc := relation.NewTable("accounts", relation.MustSchema(relation.Column{Name: "x", Type: relation.Int}))
	if err := engine.Distribute(map[string]*relation.Table{"accounts": acc}); err == nil {
		t.Error("duplicate table install accepted")
	}
}

func TestCalibrate(t *testing.T) {
	_, engine, _ := buildTestWorld(t)
	model, err := costmodel.NewCalibratedModel(&costmodel.CountModel{LocalProcess: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{ID: "cal", Tables: []core.TableID{"accounts", "trades"}, BusinessValue: 1}
	sql := `SELECT a.a_id FROM accounts a, trades tr WHERE a.a_id = tr.t_account`
	// One replicated table (accounts) → 2 configurations.
	ms, err := engine.Calibrate(q, sql, model, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d, want 2", len(ms))
	}
	if model.Len() != 2 {
		t.Errorf("model entries = %d, want 2", model.Len())
	}
	// Both configurations include the unreplicated trades as base.
	if _, ok := model.Lookup("cal", []core.TableID{"trades"}); !ok {
		t.Error("all-replica config (trades only base) not recorded")
	}
	if _, ok := model.Lookup("cal", []core.TableID{"trades", "accounts"}); !ok {
		t.Error("all-base config not recorded")
	}
	if _, err := engine.Calibrate(q, sql, model, 0); err == nil {
		t.Error("zero perMinute accepted")
	}
}
