package federation

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/relation"
	"ivdss/internal/replication"
	"ivdss/internal/sqlmini"

	"ivdss/internal/wall"
)

// SyncBucket is the engine's slice of the shared sync-bandwidth budget: a
// post-paid token bucket where Debt reports outstanding overdraw (zero
// means spending is allowed) and Charge post-pays a payload's bytes.
// *replsync.Bucket implements it; the indirection keeps federation from
// importing replsync, whose clockwork depends on the scheduler.
type SyncBucket interface {
	Debt() float64
	Charge(bytes int64)
}

// Site is an in-process remote server holding base tables. The live TCP
// deployment (internal/server) exposes the same data over the wire; the
// engine here is the embedded equivalent used by examples, tests and
// calibration.
type Site struct {
	id     core.SiteID
	tables map[core.TableID]*relation.Table
}

// NewSite returns an empty remote site.
func NewSite(id core.SiteID) *Site {
	return &Site{id: id, tables: make(map[core.TableID]*relation.Table)}
}

// ID returns the site identifier.
func (s *Site) ID() core.SiteID { return s.id }

// AddTable installs a base table on the site.
func (s *Site) AddTable(t *relation.Table) error {
	id := core.TableID(strings.ToLower(t.Name))
	if _, ok := s.tables[id]; ok {
		return fmt.Errorf("federation: site %d already has table %s", s.id, id)
	}
	s.tables[id] = t
	return nil
}

// Table returns a base table by ID.
func (s *Site) Table(id core.TableID) (*relation.Table, error) {
	t, ok := s.tables[id]
	if !ok {
		return nil, fmt.Errorf("federation: site %d has no table %s", s.id, id)
	}
	return t, nil
}

// Engine executes chosen plans over live data: base accesses read the
// owning site's table, replica accesses read the local replica snapshot
// maintained by the replication manager's sync events.
type Engine struct {
	catalog  *Catalog
	sites    map[core.SiteID]*Site
	replicas map[core.TableID]*relation.Table
	// views holds each materialized view's current answer table,
	// installed by the view maintenance pipeline.
	views map[core.ViewID]*relation.Table
	// bucket, when set, is the shared sync-bandwidth bucket replica
	// refreshes charge — the same one the sync agent draws on, so
	// pre-warming replica-access plans cannot exceed the sync budget.
	bucket SyncBucket
	// netDelay simulates the network cost of each remote base-table
	// access; in-process sites are otherwise as fast as local replicas,
	// which would hide the federation trade-off the planner reasons about.
	netDelay time.Duration
	// execOpts selects the sqlmini execution engine. The default is the
	// bytecode VM with a shared cache, so repeated plans over the same
	// replica snapshots reuse columnar images and hash-join builds.
	execOpts sqlmini.Options
}

// NewEngine builds an engine and subscribes it to the catalog's
// replication manager so sync events refresh local replica snapshots.
func NewEngine(catalog *Catalog) (*Engine, error) {
	if catalog == nil {
		return nil, fmt.Errorf("federation: engine needs a catalog")
	}
	e := &Engine{
		catalog:  catalog,
		sites:    make(map[core.SiteID]*Site),
		replicas: make(map[core.TableID]*relation.Table),
		views:    make(map[core.ViewID]*relation.Table),
		execOpts: sqlmini.Options{Cache: sqlmini.NewExecCache()},
	}
	catalog.Replication().OnSync(func(ev replication.SyncEvent) {
		// A failed copy leaves the previous snapshot in place; the planner
		// still sees the stale freshness via the replication manager.
		_ = e.refreshReplica(ev.Table)
	})
	return e, nil
}

// SetNetworkDelay configures the simulated per-access network cost of
// reading a base table from a remote site. Zero (the default) disables it.
func (e *Engine) SetNetworkDelay(d time.Duration) { e.netDelay = d }

// SetSQLEngine selects the sqlmini execution engine for subsequent plan
// executions (the bytecode VM by default; the tree-walk oracle for
// reference runs).
func (e *Engine) SetSQLEngine(eng sqlmini.Engine) { e.execOpts.Engine = eng }

// AddSite registers a remote site.
func (e *Engine) AddSite(s *Site) error {
	if _, ok := e.sites[s.ID()]; ok {
		return fmt.Errorf("federation: site %d already registered", s.ID())
	}
	e.sites[s.ID()] = s
	return nil
}

// Distribute creates sites per the catalog's placement and installs each
// base table on its owning site.
func (e *Engine) Distribute(tables map[string]*relation.Table) error {
	// Install in sorted name order: site construction and the first
	// error surfaced must not depend on map iteration order.
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := tables[name]
		id := core.TableID(strings.ToLower(name))
		site, err := e.catalog.Placement().SiteOf(id)
		if err != nil {
			return err
		}
		s, ok := e.sites[site]
		if !ok {
			s = NewSite(site)
			e.sites[site] = s
		}
		if err := s.AddTable(t); err != nil {
			return err
		}
	}
	return nil
}

// SetSyncBucket routes the engine's replica-refresh bytes through the
// given shared bandwidth bucket (the one the sync agent charges), so all
// byte movers respect one sync budget. Nil (the default) is unlimited.
func (e *Engine) SetSyncBucket(b SyncBucket) { e.bucket = b }

// InstallView installs (or replaces) a materialized view's current answer
// table. The view maintenance pipeline calls this after each refresh;
// AccessView plans read the installed table.
func (e *Engine) InstallView(id core.ViewID, t *relation.Table) {
	e.views[id] = t
}

// View returns the current answer table of a materialized view.
func (e *Engine) View(id core.ViewID) (*relation.Table, error) {
	t, ok := e.views[id]
	if !ok {
		return nil, fmt.Errorf("federation: no materialized answer for view %s", id)
	}
	return t, nil
}

// refreshReplica snapshots the base table into the local replica store,
// charging the payload against the shared sync bucket. A bucket in debt
// defers the refresh — the previous snapshot stays in place and the next
// sync event retries — so pre-warming cannot exceed the sync budget.
func (e *Engine) refreshReplica(id core.TableID) error {
	site, err := e.catalog.Placement().SiteOf(id)
	if err != nil {
		return err
	}
	s, ok := e.sites[site]
	if !ok {
		return fmt.Errorf("federation: site %d not registered for replica %s", site, id)
	}
	t, err := s.Table(id)
	if err != nil {
		return err
	}
	if e.bucket != nil {
		if debt := e.bucket.Debt(); debt > 0 {
			return fmt.Errorf("federation: replica %s refresh deferred: sync budget in debt %.0f bytes", id, debt)
		}
	}
	snap := t.Clone()
	if e.bucket != nil {
		e.bucket.Charge(snap.SizeBytes())
	}
	e.replicas[id] = snap
	return nil
}

// Replica returns the current local snapshot of a replicated table.
func (e *Engine) Replica(id core.TableID) (*relation.Table, error) {
	t, ok := e.replicas[id]
	if !ok {
		return nil, fmt.Errorf("federation: no replica snapshot for %s", id)
	}
	return t, nil
}

// planCatalog resolves table names per the plan's access decisions. It
// carries the execution context so simulated network waits (and the fetch
// itself) stop as soon as the caller's deadline expires.
type planCatalog struct {
	ctx    context.Context
	engine *Engine
	access map[core.TableID]core.TableAccess
}

var _ sqlmini.Catalog = (*planCatalog)(nil)

func (pc *planCatalog) Table(name string) (*relation.Table, error) {
	if err := pc.ctx.Err(); err != nil {
		return nil, context.Cause(pc.ctx)
	}
	id := core.TableID(strings.ToLower(name))
	a, ok := pc.access[id]
	if !ok {
		return nil, fmt.Errorf("federation: plan has no access decision for table %s", id)
	}
	switch a.Kind {
	case core.AccessReplica:
		return pc.engine.Replica(id)
	case core.AccessView:
		// A view materializes a whole query's answer, never a base table's
		// rows: view plans bypass SQL execution in ExecutePlanContext, so a
		// per-table view lookup here means the plan was malformed.
		return nil, fmt.Errorf("federation: view %s cannot serve table %s inside a multi-source plan", a.View, id)
	case core.AccessBase:
		s, ok := pc.engine.sites[a.Site]
		if !ok {
			return nil, fmt.Errorf("federation: unknown site %d for table %s", a.Site, id)
		}
		if d := pc.engine.netDelay; d > 0 {
			// The simulated network wait is interruptible: a remote fetch
			// must not outlive the caller's deadline just to return data
			// nobody is waiting for.
			t := wall.NewTimer(d)
			select {
			case <-t.C:
			case <-pc.ctx.Done():
				t.Stop()
				return nil, context.Cause(pc.ctx)
			}
		}
		return s.Table(id)
	default:
		return nil, fmt.Errorf("federation: invalid access kind %d for table %s", int(a.Kind), id)
	}
}

// ExecutePlan evaluates the SQL text under the plan's per-table access
// decisions and returns the result rows.
func (e *Engine) ExecutePlan(sql string, plan core.Plan) (*relation.Table, error) {
	return e.ExecutePlanContext(context.Background(), sql, plan)
}

// ExecutePlanContext is ExecutePlan under a context: base-table fetches
// (including their simulated network delay) and the executor's row loops
// all stop promptly once the context ends, returning its cause.
func (e *Engine) ExecutePlanContext(ctx context.Context, sql string, plan core.Plan) (*relation.Table, error) {
	if va, ok := plan.ViewAccess(); ok {
		// The view already materializes the query's full answer: serve it
		// directly instead of re-running the SQL.
		return e.View(va.View)
	}
	access := make(map[core.TableID]core.TableAccess, len(plan.Access))
	for _, a := range plan.Access {
		access[a.Table] = a
	}
	return sqlmini.RunWith(ctx, sql, &planCatalog{ctx: ctx, engine: e, access: access}, e.execOpts)
}

// Measurement is one calibration data point: the wall time to execute a
// query with a particular set of tables read remotely.
type Measurement struct {
	Bases   []core.TableID
	Elapsed time.Duration
}

// Calibrate executes the query once per base/replica configuration over
// the replicated subset of its tables (all unreplicated tables are always
// base) and records the measured processing time into the model. Wall time
// converts to experiment minutes via perMinute (e.g. perMinute =
// time.Millisecond means 1 ms of wall time ≈ 1 experiment minute). The
// subset count is 2^r for r replicated tables, capped at 256 configurations
// — matching the paper's observation that per-configuration compilation is
// a small, one-off, ahead-of-time cost.
func (e *Engine) Calibrate(q core.Query, sql string, model *costmodel.CalibratedModel, perMinute time.Duration) ([]Measurement, error) {
	if perMinute <= 0 {
		return nil, fmt.Errorf("federation: perMinute must be positive")
	}
	var replicated []core.TableID
	var fixedBase []core.TableID
	repl := e.catalog.Replication()
	for _, id := range q.Tables {
		if repl.Replicated(id) {
			replicated = append(replicated, id)
		} else {
			fixedBase = append(fixedBase, id)
		}
	}
	if len(replicated) > 8 {
		return nil, fmt.Errorf("federation: calibrating %d replicated tables needs %d configs, over the 256 cap",
			len(replicated), 1<<len(replicated))
	}
	// Replica-access configurations need a snapshot in place even if no
	// scheduled sync has fired yet.
	for _, id := range replicated {
		if _, ok := e.replicas[id]; !ok {
			if err := e.refreshReplica(id); err != nil {
				return nil, err
			}
		}
	}

	var out []Measurement
	for mask := 0; mask < 1<<len(replicated); mask++ {
		access := make([]core.TableAccess, 0, len(q.Tables))
		bases := append([]core.TableID{}, fixedBase...)
		for _, id := range fixedBase {
			site, err := e.catalog.Placement().SiteOf(id)
			if err != nil {
				return nil, err
			}
			access = append(access, core.TableAccess{Table: id, Site: site, Kind: core.AccessBase})
		}
		for j, id := range replicated {
			site, err := e.catalog.Placement().SiteOf(id)
			if err != nil {
				return nil, err
			}
			if mask&(1<<j) != 0 {
				bases = append(bases, id)
				access = append(access, core.TableAccess{Table: id, Site: site, Kind: core.AccessBase})
			} else {
				access = append(access, core.TableAccess{Table: id, Site: site, Kind: core.AccessReplica})
			}
		}
		// One warmup run absorbs cold caches, then the minimum of three
		// timed runs filters scheduler noise.
		if _, err := e.ExecutePlan(sql, core.Plan{Query: q, Access: access}); err != nil {
			return nil, fmt.Errorf("federation: calibrate %s mask %d: %w", q.ID, mask, err)
		}
		elapsed := time.Duration(1<<62 - 1)
		for rep := 0; rep < 3; rep++ {
			start := wall.Now()
			if _, err := e.ExecutePlan(sql, core.Plan{Query: q, Access: access}); err != nil {
				return nil, fmt.Errorf("federation: calibrate %s mask %d: %w", q.ID, mask, err)
			}
			if d := wall.Since(start); d < elapsed {
				elapsed = d
			}
		}
		model.Record(q.ID, bases, core.CostEstimate{
			Process: float64(elapsed) / float64(perMinute),
		})
		out = append(out, Measurement{Bases: bases, Elapsed: elapsed})
	}
	return out, nil
}
