package federation

import (
	"fmt"

	"ivdss/internal/core"
	"ivdss/internal/replication"
)

// Catalog combines table placement, replication state, and the
// materialized-view directory into the snapshot the IVQP planner consumes:
// per table, every data source the plan space enumerates.
type Catalog struct {
	placement *Placement
	replicas  *replication.Manager
	views     viewRegistry
}

// NewCatalog wires a placement to a replication manager. Every table the
// manager replicates must be placed.
func NewCatalog(p *Placement, m *replication.Manager) (*Catalog, error) {
	if p == nil || m == nil {
		return nil, fmt.Errorf("federation: catalog needs placement and replication manager")
	}
	for _, id := range m.Tables() {
		if _, err := p.SiteOf(id); err != nil {
			return nil, fmt.Errorf("federation: replicated table %s is not placed", id)
		}
	}
	return &Catalog{placement: p, replicas: m}, nil
}

// Placement exposes the underlying placement.
func (c *Catalog) Placement() *Placement { return c.placement }

// Replication exposes the underlying replication manager.
func (c *Catalog) Replication() *replication.Manager { return c.replicas }

// Snapshot returns the planner view of the given tables at time now,
// including scheduled syncs within the horizon (0 = unbounded).
func (c *Catalog) Snapshot(tables []core.TableID, now core.Time, horizon core.Duration) ([]core.TableState, error) {
	out := make([]core.TableState, len(tables))
	for i, id := range tables {
		site, err := c.placement.SiteOf(id)
		if err != nil {
			return nil, err
		}
		out[i] = core.TableState{
			ID:      id,
			Site:    site,
			Replica: c.replicas.StateFor(id, now, horizon),
			Views:   c.viewStatesFor(id, now, horizon),
		}
	}
	return out, nil
}

// SnapshotAll returns the planner view of every placed table.
func (c *Catalog) SnapshotAll(now core.Time, horizon core.Duration) ([]core.TableState, error) {
	return c.Snapshot(c.placement.Tables(), now, horizon)
}
