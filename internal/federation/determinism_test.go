package federation

import (
	"testing"

	"ivdss/internal/core"
)

// NewPlacement validates tables in sorted order, so with several tables
// on invalid sites the reported offender is always the lexically
// smallest — not whichever the map happened to yield first.
func TestNewPlacementDeterministicOffender(t *testing.T) {
	const want = "federation: table alpha placed on non-remote site 0"
	for i := 0; i < 32; i++ {
		siteOf := map[core.TableID]core.SiteID{
			"gamma": 0,
			"beta":  0,
			"alpha": 0,
			"ok":    1,
		}
		_, err := NewPlacement(siteOf)
		if err == nil || err.Error() != want {
			t.Fatalf("run %d: NewPlacement error = %v; want %q", i, err, want)
		}
	}
}
