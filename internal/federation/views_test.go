package federation

import (
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/relation"
	"ivdss/internal/replication"
	"ivdss/internal/replsync"
	"ivdss/internal/scheduler"
)

func TestRegisterView(t *testing.T) {
	catalog, _, _ := buildTestWorld(t)
	def := core.ViewDef{
		ID:      "exposure",
		QueryID: "q-exposure",
		Table:   "trades",
		SQL:     "SELECT t_account, sum(t_amount) FROM trades GROUP BY t_account",
	}
	if err := catalog.RegisterView(def); err != nil {
		t.Fatalf("RegisterView: %v", err)
	}
	if err := catalog.RegisterView(def); err == nil {
		t.Error("duplicate view ID accepted")
	}
	if _, ok := catalog.View("exposure"); !ok {
		t.Error("View lookup failed after registration")
	}
	if got := catalog.Views(); len(got) != 1 || got[0].ID != "exposure" {
		t.Errorf("Views() = %v", got)
	}

	bad := []core.ViewDef{
		{ID: "j", QueryID: "q", Table: "trades",
			SQL: "SELECT t_account FROM trades JOIN accounts ON t_account = a_id"}, // join
		{ID: "m", QueryID: "q", Table: "accounts",
			SQL: "SELECT t_account FROM trades"}, // table mismatch
		{ID: "u", QueryID: "q", Table: "ghost",
			SQL: "SELECT x FROM ghost"}, // unplaced table
		{ID: "p", QueryID: "q", Table: "trades",
			SQL: "SELEC broken"}, // parse error
	}
	for _, def := range bad {
		if err := catalog.RegisterView(def); err == nil {
			t.Errorf("view %s: invalid definition accepted", def.ID)
		}
	}

	catalog.DropView("exposure")
	if _, ok := catalog.View("exposure"); ok {
		t.Error("View lookup succeeded after DropView")
	}
}

func TestSnapshotAttachesViewStates(t *testing.T) {
	catalog, _, mgr := buildTestWorld(t)
	if err := catalog.RegisterView(core.ViewDef{
		ID:      "exposure",
		QueryID: "q-exposure",
		Table:   "accounts",
		SQL:     "SELECT a_id, sum(a_balance) FROM accounts GROUP BY a_id",
	}); err != nil {
		t.Fatal(err)
	}

	// Not yet registered as a sync unit: no planner state.
	snap, err := catalog.Snapshot([]core.TableID{"accounts"}, 12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap[0].Views) != 0 {
		t.Fatalf("unsynced view got planner state: %v", snap[0].Views)
	}

	// Register the view's unit and complete one refresh.
	unit := core.ViewUnit("exposure")
	if err := mgr.Register(unit, replication.Schedule{Times: []core.Time{5, 15, 25}}); err != nil {
		t.Fatal(err)
	}
	mgr.Advance(5)
	snap, err = catalog.Snapshot([]core.TableID{"accounts"}, 12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap[0].Views) != 1 {
		t.Fatalf("Views = %v, want one state", snap[0].Views)
	}
	vs := snap[0].Views[0]
	if vs.ID != "exposure" || vs.QueryID != "q-exposure" {
		t.Errorf("view state identity = %+v", vs)
	}
	if vs.LastSync != 5 {
		t.Errorf("LastSync = %v, want 5", vs.LastSync)
	}
	if len(vs.NextSyncs) != 2 || vs.NextSyncs[0] != 15 {
		t.Errorf("NextSyncs = %v", vs.NextSyncs)
	}
	if err := (core.TableState{ID: "accounts", Views: snap[0].Views}).Validate(); err != nil {
		t.Errorf("snapshot state invalid: %v", err)
	}
}

func TestExecutePlanViewBypass(t *testing.T) {
	_, engine, _ := buildTestWorld(t)
	answer := relation.NewTable("result", relation.MustSchema(
		relation.Column{Name: "t_account", Type: relation.Int},
		relation.Column{Name: "sum(t_amount)", Type: relation.Float},
	))
	answer.MustInsert(relation.Row{relation.IntVal(1), relation.FloatVal(35)})
	engine.InstallView("exposure", answer)

	q := core.Query{ID: "q-exposure", Tables: []core.TableID{"trades"}, BusinessValue: 1}
	plan := core.Plan{Query: q, Access: []core.TableAccess{
		{Table: "trades", Site: 2, Kind: core.AccessView, Freshness: 3, View: "exposure"},
	}}
	// The SQL is deliberately unexecutable: a view plan must not re-run it.
	out, err := engine.ExecutePlan("SELECT broken FROM nowhere", plan)
	if err != nil {
		t.Fatalf("view plan execution: %v", err)
	}
	if out != answer {
		t.Error("view plan did not serve the installed answer table")
	}

	// A view access mixed into a multi-source plan is malformed.
	mixed := core.Plan{Query: q, Access: []core.TableAccess{
		{Table: "trades", Site: 2, Kind: core.AccessView, Freshness: 3, View: "exposure"},
		{Table: "accounts", Site: 1, Kind: core.AccessBase},
	}}
	if _, err := engine.ExecutePlan("SELECT t_account FROM trades, accounts", mixed); err == nil {
		t.Error("multi-source plan with a view access accepted")
	}

	// Unknown view.
	missing := core.Plan{Query: q, Access: []core.TableAccess{
		{Table: "trades", Site: 2, Kind: core.AccessView, View: "nope"},
	}}
	if _, err := engine.ExecutePlan("SELECT 1 FROM trades", missing); err == nil {
		t.Error("uninstalled view served")
	}
}

// TestRefreshReplicaSharedBucket pins the satellite fix: replica
// pre-warming charges the shared sync bucket, and a bucket in debt defers
// the refresh instead of overdrawing the -sync-budget.
func TestRefreshReplicaSharedBucket(t *testing.T) {
	placement, err := NewPlacement(map[core.TableID]core.SiteID{"accounts": 1})
	if err != nil {
		t.Fatal(err)
	}
	mgr := replication.NewManager()
	if err := mgr.Register("accounts", replication.Schedule{Times: []core.Time{0, 10, 20, 30}}); err != nil {
		t.Fatal(err)
	}
	catalog, err := NewCatalog(placement, mgr)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(catalog)
	if err != nil {
		t.Fatal(err)
	}
	accounts := relation.NewTable("accounts", relation.MustSchema(
		relation.Column{Name: "a_id", Type: relation.Int},
		relation.Column{Name: "a_balance", Type: relation.Float},
	))
	accounts.MustInsert(relation.Row{relation.IntVal(1), relation.FloatVal(100)})
	accounts.MustInsert(relation.Row{relation.IntVal(2), relation.FloatVal(250)})
	if err := engine.Distribute(map[string]*relation.Table{"accounts": accounts}); err != nil {
		t.Fatal(err)
	}

	clk := &scheduler.ManualClock{}
	bucket, err := replsync.NewBucket(clk, 10, 40) // 10 B/min, burst 40
	if err != nil {
		t.Fatal(err)
	}
	engine.SetSyncBucket(bucket)

	mgr.Advance(0) // 2 rows × 16 B = 32 B charged; 8 tokens left
	if r, _ := engine.Replica("accounts"); r.NumRows() != 2 {
		t.Fatal("first refresh did not install the snapshot")
	}

	accounts.MustInsert(relation.Row{relation.IntVal(3), relation.FloatVal(5)})
	mgr.Advance(10) // 48 B charged from 8 tokens: bucket goes to -40
	if r, _ := engine.Replica("accounts"); r.NumRows() != 3 {
		t.Fatal("second refresh should still pass (post-paid bucket)")
	}

	accounts.MustInsert(relation.Row{relation.IntVal(4), relation.FloatVal(7)})
	mgr.Advance(20) // bucket in debt: refresh defers, snapshot stays
	if r, _ := engine.Replica("accounts"); r.NumRows() != 3 {
		t.Fatal("refresh proceeded while the shared bucket was in debt")
	}

	clk.RunUntil(10) // refill: 10 min × 10 B/min clears the 40 B debt
	mgr.Advance(30)
	if r, _ := engine.Replica("accounts"); r.NumRows() != 4 {
		t.Fatal("refresh did not resume after the bucket refilled")
	}
}
