package federation

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ivdss/internal/core"
	"ivdss/internal/sqlmini"
)

// viewRegistry is the catalog's materialized-view directory: definitions
// keyed by ViewID, with a per-table index so Snapshot can attach each
// table's views. Registration validates the defining SQL up front — a view
// that cannot be maintained incrementally never enters the plan space.
type viewRegistry struct {
	mu     sync.RWMutex
	defs   map[core.ViewID]core.ViewDef
	byBase map[core.TableID][]core.ViewID // sorted by ViewID
}

// RegisterView adds a materialized-view definition to the catalog. The SQL
// must parse, be incrementally maintainable (single FROM table, no JOINs),
// and read exactly the table the definition names, which must be placed.
// The view's sync state stays empty until the sync agent registers and
// materializes its unit; Snapshot only attaches views with known state.
func (c *Catalog) RegisterView(def core.ViewDef) error {
	if err := def.Validate(); err != nil {
		return err
	}
	stmt, err := sqlmini.Parse(def.SQL)
	if err != nil {
		return fmt.Errorf("federation: view %s: %w", def.ID, err)
	}
	if err := sqlmini.ViewMaintainable(stmt); err != nil {
		return fmt.Errorf("federation: view %s: %w", def.ID, err)
	}
	table, _, _, err := sqlmini.ViewWire(stmt)
	if err != nil {
		return fmt.Errorf("federation: view %s: %w", def.ID, err)
	}
	if core.TableID(strings.ToLower(table)) != def.Table {
		return fmt.Errorf("federation: view %s declares table %s but its SQL reads %s", def.ID, def.Table, table)
	}
	if _, err := c.placement.SiteOf(def.Table); err != nil {
		return fmt.Errorf("federation: view %s: %w", def.ID, err)
	}

	c.views.mu.Lock()
	defer c.views.mu.Unlock()
	if c.views.defs == nil {
		c.views.defs = make(map[core.ViewID]core.ViewDef)
		c.views.byBase = make(map[core.TableID][]core.ViewID)
	}
	if _, ok := c.views.defs[def.ID]; ok {
		return fmt.Errorf("federation: view %s already registered", def.ID)
	}
	c.views.defs[def.ID] = def
	ids := append(c.views.byBase[def.Table], def.ID)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	c.views.byBase[def.Table] = ids
	return nil
}

// DropView removes a view definition (no-op when absent). The caller also
// unregisters the view's sync unit from the replication manager.
func (c *Catalog) DropView(id core.ViewID) {
	c.views.mu.Lock()
	defer c.views.mu.Unlock()
	def, ok := c.views.defs[id]
	if !ok {
		return
	}
	delete(c.views.defs, id)
	ids := c.views.byBase[def.Table]
	for i, v := range ids {
		if v == id {
			c.views.byBase[def.Table] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
}

// View returns one view definition.
func (c *Catalog) View(id core.ViewID) (core.ViewDef, bool) {
	c.views.mu.RLock()
	defer c.views.mu.RUnlock()
	def, ok := c.views.defs[id]
	return def, ok
}

// Views lists every registered view definition, sorted by ViewID.
func (c *Catalog) Views() []core.ViewDef {
	c.views.mu.RLock()
	defer c.views.mu.RUnlock()
	out := make([]core.ViewDef, 0, len(c.views.defs))
	for _, def := range c.views.defs {
		out = append(out, def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// viewStatesFor derives the planner's ViewStates for one base table: every
// registered view over it whose sync unit the replication manager knows,
// in ViewID order.
func (c *Catalog) viewStatesFor(table core.TableID, now core.Time, horizon core.Duration) []core.ViewState {
	c.views.mu.RLock()
	ids := append([]core.ViewID{}, c.views.byBase[table]...)
	defs := make([]core.ViewDef, len(ids))
	for i, id := range ids {
		defs[i] = c.views.defs[id]
	}
	c.views.mu.RUnlock()

	var out []core.ViewState
	for _, def := range defs {
		rs := c.replicas.StateFor(core.ViewUnit(def.ID), now, horizon)
		if rs == nil {
			continue
		}
		out = append(out, core.ViewState{
			ID:        def.ID,
			QueryID:   def.QueryID,
			LastSync:  rs.LastSync,
			NextSyncs: rs.NextSyncs,
		})
	}
	return out
}
