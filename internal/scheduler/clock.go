package scheduler

import (
	"container/heap"

	"ivdss/internal/core"
	"ivdss/internal/sim"
)

// Clock is the time source the scheduling engine runs against. The engine
// never sleeps or reads wall time directly: it asks the clock for "now"
// (in experiment minutes) and arms callbacks for future instants, which is
// what lets the identical engine run inside a discrete event simulation,
// against a hand-stepped test clock, or on the live server's scaled wall
// clock.
type Clock interface {
	// Now returns the current experiment time.
	Now() core.Time
	// AfterFunc arranges for fn to run d experiment minutes from now. A
	// non-positive d runs fn as soon as possible, after callbacks already
	// due. fn must not be invoked synchronously from inside AfterFunc.
	AfterFunc(d core.Duration, fn func())
}

// SimClock drives the engine on a discrete event simulator's virtual
// time. Like the simulator itself it is strictly single-threaded.
type SimClock struct {
	Sim *sim.Simulator
}

var _ Clock = SimClock{}

// Now implements Clock.
func (c SimClock) Now() core.Time { return c.Sim.Now() }

// AfterFunc implements Clock.
func (c SimClock) AfterFunc(d core.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.Sim.Schedule(d, fn)
}

// ManualClock is a hand-stepped clock for driving the engine in tests
// without a simulator: callbacks queue in (time, insertion) order and run
// when the test calls Run or RunUntil. Not safe for concurrent use.
type ManualClock struct {
	now   core.Time
	seq   uint64
	queue manualQueue
}

var _ Clock = (*ManualClock)(nil)

// Now implements Clock.
func (c *ManualClock) Now() core.Time { return c.now }

// AfterFunc implements Clock.
func (c *ManualClock) AfterFunc(d core.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	heap.Push(&c.queue, &manualEvent{at: c.now + d, seq: c.seq, fn: fn})
	c.seq++
}

// Run executes queued callbacks in time order until none remain,
// advancing the clock to each callback's instant.
func (c *ManualClock) Run() {
	for len(c.queue) > 0 {
		ev := heap.Pop(&c.queue).(*manualEvent)
		c.now = ev.at
		ev.fn()
	}
}

// RunUntil executes callbacks due at or before t, then advances the clock
// to t.
func (c *ManualClock) RunUntil(t core.Time) {
	for len(c.queue) > 0 && c.queue[0].at <= t {
		ev := heap.Pop(&c.queue).(*manualEvent)
		c.now = ev.at
		ev.fn()
	}
	if c.now < t {
		c.now = t
	}
}

// Pending returns the number of callbacks still queued.
func (c *ManualClock) Pending() int { return len(c.queue) }

type manualEvent struct {
	at  core.Time
	seq uint64
	fn  func()
}

// manualQueue is a min-heap over (at, seq), matching the simulator's FIFO
// tie-break among simultaneous events.
type manualQueue []*manualEvent

func (q manualQueue) Len() int { return len(q) }

func (q manualQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q manualQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *manualQueue) Push(x any) { *q = append(*q, x.(*manualEvent)) }

func (q *manualQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
