package scheduler

import (
	"fmt"

	"ivdss/internal/core"
	"ivdss/internal/sim"
)

// Strategy chooses an execution plan for a query at dispatch time. The
// three strategies of the paper's evaluation are IVQP (plan search),
// Federation (always remote base tables), and Data Warehouse (always local
// replicas).
type Strategy interface {
	Plan(q core.Query, now core.Time) (core.Plan, error)
}

// IVQPStrategy plans with the information-value-driven planner.
type IVQPStrategy struct {
	Planner *core.Planner
	Catalog CatalogView
	Horizon core.Duration
}

var _ Strategy = (*IVQPStrategy)(nil)

// Plan implements Strategy.
func (s *IVQPStrategy) Plan(q core.Query, now core.Time) (core.Plan, error) {
	snap, err := s.Catalog.Snapshot(q.Tables, now, s.Horizon)
	if err != nil {
		return core.Plan{}, err
	}
	plan, _, err := s.Planner.Best(q, snap, now)
	return plan, err
}

// FixedStrategy applies one access kind to every table: the Federation
// baseline with core.AccessBase ("all queries are decomposed and executed
// at remote servers"), the Data Warehouse baseline with core.AccessReplica
// ("answers queries using these replicas without communicating with the
// remote servers").
//
// FallbackToBase makes AccessReplica degrade to the base table for tables
// without a usable replica. That is how the warehouse baseline runs on a
// partially replicated deployment, which keeps the three methods on
// identical infrastructure — the reading under which the paper's "IVQP is
// always highest" claim is coherent (IVQP's plan space then contains every
// baseline plan).
type FixedStrategy struct {
	Catalog        CatalogView
	Cost           core.CostModel
	Kind           core.AccessKind
	FallbackToBase bool
}

var _ Strategy = (*FixedStrategy)(nil)

// Plan implements Strategy.
func (s *FixedStrategy) Plan(q core.Query, now core.Time) (core.Plan, error) {
	snap, err := s.Catalog.Snapshot(q.Tables, now, 0)
	if err != nil {
		return core.Plan{}, err
	}
	return core.FixedPlan(q, snap, now, s.Cost, func(ts core.TableState) core.AccessKind {
		if s.Kind == core.AccessReplica && s.FallbackToBase {
			if ts.Replica == nil || ts.Replica.LastSync > now {
				return core.AccessBase
			}
		}
		return s.Kind
	})
}

// Dispatcher runs queries through a fixed number of execution slots on the
// DSS coordinator inside a discrete event simulation. Arrivals queue; when
// a slot frees, the dispatcher plans every waiting query and releases the
// one with the highest effective value — information value plus the
// anti-starvation aging boost for the time it has already waited (Section
// 3.3). With aging disabled this is pure value-maximizing dispatch, which
// can starve long-waiting queries under load.
//
// Dispatcher is the DES driver of the shared scheduling Engine: it mounts
// the engine on the simulator's virtual clock with model execution
// (PlanExecutor), while the live DSS server mounts the same engine on its
// wall clock with real execution.
type Dispatcher struct {
	sim *sim.Simulator
	eng *Engine
}

// NewDispatcher validates inputs and returns a dispatcher bound to the
// simulator. rates must match what the strategy optimizes for.
func NewDispatcher(s *sim.Simulator, strategy Strategy, rates core.DiscountRates, slots int, aging core.Aging) (*Dispatcher, error) {
	if s == nil || strategy == nil {
		return nil, fmt.Errorf("scheduler: dispatcher needs a simulator and a strategy")
	}
	if slots < 1 {
		return nil, fmt.Errorf("scheduler: dispatcher needs at least one slot, got %d", slots)
	}
	clock := SimClock{Sim: s}
	eng, err := NewEngine(EngineConfig{
		Clock:           clock,
		Executor:        PlanExecutor{Clock: clock, Rates: rates},
		Strategy:        strategy,
		Rates:           rates,
		Slots:           slots,
		Aging:           aging,
		HaltOnPlanError: true,
		RecordOutcomes:  true,
	})
	if err != nil {
		return nil, err
	}
	return &Dispatcher{sim: s, eng: eng}, nil
}

// SetExpiry enables value-horizon expiry; see Engine.SetEpsilon.
func (d *Dispatcher) SetExpiry(epsilon float64) { d.eng.SetEpsilon(epsilon) }

// Engine exposes the underlying scheduling engine, for drivers that need
// its full interface (workload formation, metrics).
func (d *Dispatcher) Engine() *Engine { return d.eng }

// SubmitAll schedules every query's arrival on the simulator. Call before
// running the simulation.
func (d *Dispatcher) SubmitAll(queries []core.Query) {
	for _, q := range queries {
		q := q
		d.sim.ScheduleAt(q.SubmitAt, func() { d.eng.Submit(q, nil) })
	}
}

// Outcomes returns every query's result in decision order: completions
// carry their plan and value, expired entries are marked Expired with zero
// value.
func (d *Dispatcher) Outcomes() []Outcome { return d.eng.Outcomes() }

// Shed returns how many queries expired in the queue and were dropped.
func (d *Dispatcher) Shed() int { return d.eng.Shed() }

// Pending returns the number of queries still waiting or running.
func (d *Dispatcher) Pending() int { return d.eng.Pending() }

// Err reports the first planning failure, if any; the dispatcher stops
// issuing work after one.
func (d *Dispatcher) Err() error { return d.eng.Err() }
