package scheduler

import (
	"fmt"

	"ivdss/internal/core"
	"ivdss/internal/sim"
)

// Strategy chooses an execution plan for a query at dispatch time. The
// three strategies of the paper's evaluation are IVQP (plan search),
// Federation (always remote base tables), and Data Warehouse (always local
// replicas).
type Strategy interface {
	Plan(q core.Query, now core.Time) (core.Plan, error)
}

// IVQPStrategy plans with the information-value-driven planner.
type IVQPStrategy struct {
	Planner *core.Planner
	Catalog CatalogView
	Horizon core.Duration
}

var _ Strategy = (*IVQPStrategy)(nil)

// Plan implements Strategy.
func (s *IVQPStrategy) Plan(q core.Query, now core.Time) (core.Plan, error) {
	snap, err := s.Catalog.Snapshot(q.Tables, now, s.Horizon)
	if err != nil {
		return core.Plan{}, err
	}
	plan, _, err := s.Planner.Best(q, snap, now)
	return plan, err
}

// FixedStrategy applies one access kind to every table: the Federation
// baseline with core.AccessBase ("all queries are decomposed and executed
// at remote servers"), the Data Warehouse baseline with core.AccessReplica
// ("answers queries using these replicas without communicating with the
// remote servers").
//
// FallbackToBase makes AccessReplica degrade to the base table for tables
// without a usable replica. That is how the warehouse baseline runs on a
// partially replicated deployment, which keeps the three methods on
// identical infrastructure — the reading under which the paper's "IVQP is
// always highest" claim is coherent (IVQP's plan space then contains every
// baseline plan).
type FixedStrategy struct {
	Catalog        CatalogView
	Cost           core.CostModel
	Kind           core.AccessKind
	FallbackToBase bool
}

var _ Strategy = (*FixedStrategy)(nil)

// Plan implements Strategy.
func (s *FixedStrategy) Plan(q core.Query, now core.Time) (core.Plan, error) {
	snap, err := s.Catalog.Snapshot(q.Tables, now, 0)
	if err != nil {
		return core.Plan{}, err
	}
	return core.FixedPlan(q, snap, now, s.Cost, func(ts core.TableState) core.AccessKind {
		if s.Kind == core.AccessReplica && s.FallbackToBase {
			if ts.Replica == nil || ts.Replica.LastSync > now {
				return core.AccessBase
			}
		}
		return s.Kind
	})
}

// Dispatcher runs queries through a fixed number of execution slots on the
// DSS coordinator inside a discrete event simulation. Arrivals queue; when
// a slot frees, the dispatcher plans every waiting query and releases the
// one with the highest effective value — information value plus the
// anti-starvation aging boost for the time it has already waited (Section
// 3.3). With aging disabled this is pure value-maximizing dispatch, which
// can starve long-waiting queries under load.
type Dispatcher struct {
	sim      *sim.Simulator
	strategy Strategy
	rates    core.DiscountRates
	aging    core.Aging
	slots    int
	epsilon  float64
	busy     int
	queue    []core.Query
	outcomes []Outcome
	expired  int
	err      error
}

// NewDispatcher validates inputs and returns a dispatcher bound to the
// simulator. rates must match what the strategy optimizes for.
func NewDispatcher(s *sim.Simulator, strategy Strategy, rates core.DiscountRates, slots int, aging core.Aging) (*Dispatcher, error) {
	if s == nil || strategy == nil {
		return nil, fmt.Errorf("scheduler: dispatcher needs a simulator and a strategy")
	}
	if slots < 1 {
		return nil, fmt.Errorf("scheduler: dispatcher needs at least one slot, got %d", slots)
	}
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	if err := aging.Validate(); err != nil {
		return nil, err
	}
	return &Dispatcher{sim: s, strategy: strategy, rates: rates, aging: aging, slots: slots}, nil
}

// SetExpiry enables value-horizon expiry: a queued query whose best-case
// information value has dropped below epsilon by the time a dispatch
// decision is made is shed instead of planned, recorded as an expired
// outcome. The check runs on the raw information-value horizon — the
// anti-starvation aging boost raises a query's dispatch priority but
// cannot resurrect value that has already decayed away. Zero or negative
// epsilon disables expiry (the default).
func (d *Dispatcher) SetExpiry(epsilon float64) { d.epsilon = epsilon }

// SubmitAll schedules every query's arrival on the simulator. Call before
// running the simulation.
func (d *Dispatcher) SubmitAll(queries []core.Query) {
	for _, q := range queries {
		q := q
		d.sim.ScheduleAt(q.SubmitAt, func() { d.arrive(q) })
	}
}

func (d *Dispatcher) arrive(q core.Query) {
	d.queue = append(d.queue, q)
	d.dispatch()
}

// dispatch sheds expired queries, then fills free slots with the
// highest-effective-value waiting queries. A planning failure halts the
// dispatcher and is surfaced by Err.
func (d *Dispatcher) dispatch() {
	d.shedExpired()
	for d.err == nil && d.busy < d.slots && len(d.queue) > 0 {
		now := d.sim.Now()
		bestIdx := -1
		var bestPlan core.Plan
		bestEff := 0.0
		for i, q := range d.queue {
			plan, err := d.strategy.Plan(q, now)
			if err != nil {
				d.err = fmt.Errorf("scheduler: dispatch %s at %v: %w", q.ID, now, err)
				return
			}
			iv := plan.Value(d.rates)
			eff := d.aging.EffectiveValue(iv, now-q.SubmitAt)
			if bestIdx < 0 || eff > bestEff {
				bestIdx, bestPlan, bestEff = i, plan, eff
			}
		}
		q := d.queue[bestIdx]
		d.queue = append(d.queue[:bestIdx], d.queue[bestIdx+1:]...)
		d.busy++
		plan := bestPlan
		duration := plan.ResultAt() - now
		if duration < 0 {
			duration = 0
		}
		d.sim.Schedule(duration, func() {
			lat := plan.Latencies()
			d.outcomes = append(d.outcomes, Outcome{
				Query:     q,
				Plan:      plan,
				Latencies: lat,
				Value:     core.InformationValue(q.BusinessValue, lat, d.rates),
				Wait:      plan.Start - q.SubmitAt,
			})
			d.busy--
			d.dispatch()
		})
	}
}

// shedExpired drops every queued query whose value horizon has passed,
// recording each as an expired outcome. Runs at every dispatch decision —
// including arrivals while all slots are busy — so a query never occupies
// queue space after its value is gone.
func (d *Dispatcher) shedExpired() {
	if d.epsilon <= 0 || len(d.queue) == 0 {
		return
	}
	now := d.sim.Now()
	kept := d.queue[:0]
	for _, q := range d.queue {
		if now-q.SubmitAt >= q.ValueHorizon(d.rates, d.epsilon) {
			d.outcomes = append(d.outcomes, Outcome{
				Query:   q,
				Wait:    now - q.SubmitAt,
				Expired: true,
			})
			d.expired++
			continue
		}
		kept = append(kept, q)
	}
	d.queue = kept
}

// Outcomes returns every query's result in decision order: completions
// carry their plan and value, expired entries are marked Expired with zero
// value.
func (d *Dispatcher) Outcomes() []Outcome { return d.outcomes }

// Shed returns how many queries expired in the queue and were dropped.
func (d *Dispatcher) Shed() int { return d.expired }

// Pending returns the number of queries still waiting or running.
func (d *Dispatcher) Pending() int { return len(d.queue) + d.busy }

// Err reports the first planning failure, if any; the dispatcher stops
// issuing work after one.
func (d *Dispatcher) Err() error { return d.err }
