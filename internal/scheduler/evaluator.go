// Package scheduler implements the workload side of the paper: forming
// workloads out of queries whose candidate execution ranges overlap
// (Section 3.2 step 1), choosing a workload execution order with a genetic
// algorithm so that total information value is maximized (step 2), the
// FIFO "without MQO" baseline, and an online dispatcher with the
// anti-starvation aging rule of Section 3.3.
package scheduler

import (
	"fmt"
	"math"

	"ivdss/internal/core"
)

// CatalogView is the slice of the federation catalog the scheduler needs:
// planner snapshots for a query's tables at a decision time.
type CatalogView interface {
	Snapshot(tables []core.TableID, now core.Time, horizon core.Duration) ([]core.TableState, error)
}

// Outcome is the shared per-query result record; see core.Outcome.
type Outcome = core.Outcome

// SequenceResult is the outcome of executing a set of queries in a
// particular order on the serialized DSS coordinator.
type SequenceResult struct {
	Order      []int // indices into the evaluated query slice
	Outcomes   []Outcome
	TotalValue float64
	Makespan   core.Time // when the last report arrived
}

// MeanValue returns the average information value across the sequence.
func (r SequenceResult) MeanValue() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	return r.TotalValue / float64(len(r.Outcomes))
}

// MaxWait returns the largest queueing delay any query suffered — the
// starvation statistic.
func (r SequenceResult) MaxWait() core.Duration {
	var maxWait core.Duration
	for _, o := range r.Outcomes {
		if o.Wait > maxWait {
			maxWait = o.Wait
		}
	}
	return maxWait
}

// Evaluator deterministically computes the information value of executing
// a workload in a given order — the GA's evaluation function. The model
// serializes queries on the DSS coordinator: each query is planned when it
// reaches the head of the sequence, and the coordinator is busy until its
// report arrives. All waiting shows up as computational latency because CL
// is measured from submission.
type Evaluator struct {
	Planner *core.Planner
	Catalog CatalogView
	// Horizon bounds how far ahead snapshots include scheduled syncs; zero
	// means unbounded.
	Horizon core.Duration
	// Epsilon is the value-expiry threshold: a query whose best-case
	// information value has already fallen below it by the time it reaches
	// the head of the sequence is recorded as expired (zero value, no plan)
	// without occupying the coordinator. Zero or negative disables expiry.
	Epsilon float64
}

// RunSequence executes queries[order[0]], queries[order[1]], ... starting
// no earlier than startAt and returns per-query outcomes. Every index in
// order must be valid and distinct.
func (e *Evaluator) RunSequence(queries []core.Query, order []int, startAt core.Time) (SequenceResult, error) {
	if e.Planner == nil || e.Catalog == nil {
		return SequenceResult{}, fmt.Errorf("scheduler: evaluator needs a planner and a catalog")
	}
	if err := validateOrder(len(queries), order); err != nil {
		return SequenceResult{}, err
	}
	res := SequenceResult{
		Order:    append([]int{}, order...),
		Outcomes: make([]Outcome, 0, len(order)),
	}
	clock := startAt
	rates := e.Planner.Rates()
	for _, idx := range order {
		q := queries[idx]
		decision := math.Max(clock, q.SubmitAt)
		if e.Epsilon > 0 && decision-q.SubmitAt >= q.ValueHorizon(rates, e.Epsilon) {
			// Shedding frees the coordinator immediately: the clock does not
			// advance, so later queries in the order benefit from the drop.
			res.Outcomes = append(res.Outcomes, Outcome{
				Query:   q,
				Wait:    decision - q.SubmitAt,
				Expired: true,
			})
			continue
		}
		snap, err := e.Catalog.Snapshot(q.Tables, decision, e.Horizon)
		if err != nil {
			return SequenceResult{}, fmt.Errorf("scheduler: snapshot for %s: %w", q.ID, err)
		}
		plan, _, err := e.Planner.Best(q, snap, decision)
		if err != nil {
			return SequenceResult{}, fmt.Errorf("scheduler: plan %s: %w", q.ID, err)
		}
		lat := plan.Latencies()
		value := core.InformationValue(q.BusinessValue, lat, rates)
		res.Outcomes = append(res.Outcomes, Outcome{
			Query:     q,
			Plan:      plan,
			Latencies: lat,
			Value:     value,
			Wait:      plan.Start - q.SubmitAt,
		})
		res.TotalValue += value
		clock = plan.ResultAt()
		if clock > res.Makespan {
			res.Makespan = clock
		}
	}
	return res, nil
}

func validateOrder(n int, order []int) error {
	if len(order) != n {
		return fmt.Errorf("scheduler: order has %d entries for %d queries", len(order), n)
	}
	seen := make([]bool, n)
	for _, idx := range order {
		if idx < 0 || idx >= n {
			return fmt.Errorf("scheduler: order index %d out of range", idx)
		}
		if seen[idx] {
			return fmt.Errorf("scheduler: order repeats index %d", idx)
		}
		seen[idx] = true
	}
	return nil
}
