package scheduler

// This file is the live driver's Clock implementation and, together with
// internal/sim and internal/wall, one of the three places in the tree
// allowed to touch the time package directly (enforced by the clockcheck
// analyzer). Everything the live server knows about wall time flows
// through one WallClock, so "experiment minutes" mean the same thing to
// the scheduling engine, the replication engine, the circuit breakers,
// and the status output.

import (
	"time"

	"ivdss/internal/core"
)

// WallClock drives the engine on scaled wall time: experiment minutes
// advance at Scale minutes per wall second from the moment the clock was
// created. It is immutable after creation and safe for concurrent use.
type WallClock struct {
	epoch time.Time
	scale float64 // experiment minutes per wall second
}

var _ Clock = (*WallClock)(nil)

// NewWallClock returns a clock whose experiment time starts at 0 now and
// advances at scale experiment minutes per wall second (1/60 = real
// time). It panics on a non-positive scale: a stopped or reversed wall
// clock is never meaningful.
func NewWallClock(scale float64) *WallClock {
	if scale <= 0 {
		panic("scheduler: WallClock scale must be positive")
	}
	return &WallClock{epoch: time.Now(), scale: scale}
}

// Now implements Clock.
func (c *WallClock) Now() core.Time {
	return time.Since(c.epoch).Seconds() * c.scale
}

// AfterFunc implements Clock: fn runs in its own goroutine once d
// experiment minutes of wall time have elapsed.
func (c *WallClock) AfterFunc(d core.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(c.WallDelay(d), fn)
}

// WallDelay converts an experiment-minute duration to wall-clock time.
func (c *WallClock) WallDelay(d core.Duration) time.Duration {
	return time.Duration(d / c.scale * float64(time.Second))
}

// WallNow returns the current wall-clock instant from the same reading
// the experiment time is derived from.
func (c *WallClock) WallNow() time.Time { return time.Now() }

// Epoch returns the wall instant at which this clock's experiment time
// was 0.
func (c *WallClock) Epoch() time.Time { return c.epoch }
