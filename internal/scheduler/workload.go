package scheduler

import (
	"fmt"
	"math"
	"sort"

	"ivdss/internal/core"
)

// Workload is a group of queries whose candidate execution ranges overlap
// and must therefore be ordered jointly (Section 3.2, step 1).
type Workload struct {
	Indices []int // indices into the original query slice, by submit time
	Start   core.Time
	End     core.Time
}

// PlanRanges derives each query's candidate execution range: from its
// submission to submission plus the tolerated computational latency left
// by its best solo plan (the search bound). An unbounded tolerance (λCL=0)
// is capped by the evaluator's horizon, or by fallbackWidth when that is
// also unbounded.
func PlanRanges(queries []core.Query, ev *Evaluator, fallbackWidth core.Duration) ([]core.Duration, error) {
	if fallbackWidth <= 0 {
		return nil, fmt.Errorf("scheduler: fallback range width must be positive")
	}
	widths := make([]core.Duration, len(queries))
	for i, q := range queries {
		snap, err := ev.Catalog.Snapshot(q.Tables, q.SubmitAt, ev.Horizon)
		if err != nil {
			return nil, fmt.Errorf("scheduler: range for %s: %w", q.ID, err)
		}
		_, stats, err := ev.Planner.Best(q, snap, q.SubmitAt)
		if err != nil {
			return nil, fmt.Errorf("scheduler: range for %s: %w", q.ID, err)
		}
		w := stats.FinalBound
		if math.IsInf(w, 1) || w <= 0 {
			w = ev.Horizon
		}
		if w <= 0 || math.IsInf(w, 1) {
			w = fallbackWidth
		}
		widths[i] = w
	}
	return widths, nil
}

// FormWorkloads groups queries whose ranges [SubmitAt, SubmitAt+width]
// overlap, by merging intervals along the time axis. Workloads come back
// ordered by start time, each with its members ordered by submission.
func FormWorkloads(queries []core.Query, widths []core.Duration) ([]Workload, error) {
	if len(widths) != len(queries) {
		return nil, fmt.Errorf("scheduler: %d widths for %d queries", len(widths), len(queries))
	}
	idx := make([]int, len(queries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return queries[idx[a]].SubmitAt < queries[idx[b]].SubmitAt
	})
	var out []Workload
	for _, i := range idx {
		q := queries[i]
		end := q.SubmitAt + widths[i]
		if len(out) > 0 && q.SubmitAt <= out[len(out)-1].End {
			w := &out[len(out)-1]
			w.Indices = append(w.Indices, i)
			if end > w.End {
				w.End = end
			}
			continue
		}
		out = append(out, Workload{Indices: []int{i}, Start: q.SubmitAt, End: end})
	}
	return out, nil
}

// ScheduleFIFO runs the whole query set in submission order — the paper's
// "Without MQO" baseline.
func ScheduleFIFO(queries []core.Query, ev *Evaluator) (SequenceResult, error) {
	order := make([]int, len(queries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return queries[order[a]].SubmitAt < queries[order[b]].SubmitAt
	})
	return ev.RunSequence(queries, order, 0)
}

// MQOResult is the outcome of multi-query optimization over a query set.
type MQOResult struct {
	SequenceResult
	Workloads   []Workload
	Evaluations int // GA fitness evaluations across all workloads
}

// ScheduleMQO performs the paper's two-step multi-query optimization:
// form workloads of range-overlapping queries, then order each workload
// with the genetic algorithm, maximizing the workload's total information
// value. Workloads execute in time order on the shared coordinator, so a
// long workload delays the next one's start.
func ScheduleMQO(queries []core.Query, ev *Evaluator, cfg GAConfig) (MQOResult, error) {
	widths, err := PlanRanges(queries, ev, 1e6)
	if err != nil {
		return MQOResult{}, err
	}
	workloads, err := FormWorkloads(queries, widths)
	if err != nil {
		return MQOResult{}, err
	}
	res := MQOResult{Workloads: workloads}
	res.Order = make([]int, 0, len(queries))
	clock := core.Time(0)
	for wi, w := range workloads {
		members := make([]core.Query, len(w.Indices))
		for j, qi := range w.Indices {
			members[j] = queries[qi]
		}
		startAt := clock
		var seq SequenceResult
		if len(members) == 1 {
			seq, err = ev.RunSequence(members, []int{0}, startAt)
			if err != nil {
				return MQOResult{}, err
			}
		} else {
			wcfg := cfg
			wcfg.Seed = cfg.Seed + int64(wi)
			order, _, st, gerr := OptimizeOrder(len(members), func(order []int) (float64, error) {
				r, rerr := ev.RunSequence(members, order, startAt)
				if rerr != nil {
					return 0, rerr
				}
				return r.TotalValue, nil
			}, wcfg)
			if gerr != nil {
				return MQOResult{}, gerr
			}
			res.Evaluations += st.Evaluations
			seq, err = ev.RunSequence(members, order, startAt)
			if err != nil {
				return MQOResult{}, err
			}
		}
		for pos, local := range seq.Order {
			res.Order = append(res.Order, w.Indices[local])
			res.Outcomes = append(res.Outcomes, seq.Outcomes[pos])
		}
		res.TotalValue += seq.TotalValue
		if seq.Makespan > res.Makespan {
			res.Makespan = seq.Makespan
		}
		clock = math.Max(clock, seq.Makespan)
	}
	return res, nil
}
