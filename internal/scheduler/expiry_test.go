package scheduler

import (
	"math"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/sim"
)

// TestDispatcherShedsExpiredQueuedQueries runs a single-slot dispatcher
// under a burst with anti-starvation aging ENABLED: aging boosts a waiting
// query's dispatch priority, but it cannot resurrect decayed value, so a
// query whose horizon passes while queued must still be dropped — and
// recorded distinctly from completions.
func TestDispatcherShedsExpiredQueuedQueries(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	s := sim.New()
	strategy := &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100}
	aging := core.Aging{Coefficient: .05, Exponent: 1.5}
	d, err := NewDispatcher(s, strategy, rates, 1, aging)
	if err != nil {
		t.Fatal(err)
	}
	const epsilon = .6
	d.SetExpiry(epsilon)

	// Eight simultaneous arrivals through one slot: the tail of the queue
	// waits past its ~10-minute horizon (ln .6 / ln .95) and must be shed.
	queries := queriesAt([]core.Time{0, 0, 0, 0, 0, 0, 0, 0})
	horizon := queries[0].ValueHorizon(rates, epsilon)
	d.SubmitAll(queries)
	s.Run()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}

	outcomes := d.Outcomes()
	if len(outcomes) != len(queries) || d.Pending() != 0 {
		t.Fatalf("outcomes = %d, pending = %d, want %d and 0", len(outcomes), d.Pending(), len(queries))
	}
	completed, expired := 0, 0
	for _, o := range outcomes {
		if o.Expired {
			expired++
			if o.Value != 0 {
				t.Errorf("expired %s has value %v, want 0", o.Query.ID, o.Value)
			}
			if len(o.Plan.Access) != 0 {
				t.Errorf("expired %s carries a plan", o.Query.ID)
			}
			if o.Wait < horizon {
				t.Errorf("expired %s waited %v, less than the %v horizon", o.Query.ID, o.Wait, horizon)
			}
			continue
		}
		completed++
		if o.Value <= 0 {
			t.Errorf("completed %s has value %v", o.Query.ID, o.Value)
		}
	}
	if expired == 0 {
		t.Fatal("no query expired; the burst should overload one slot")
	}
	if completed == 0 {
		t.Fatal("every query expired; the first dispatches immediately")
	}
	if d.Shed() != expired {
		t.Errorf("Shed() = %d, want %d", d.Shed(), expired)
	}
}

// TestDispatcherExpiryDisabledByDefault: the same overloaded burst with no
// epsilon completes everything (the pre-expiry behavior).
func TestDispatcherExpiryDisabledByDefault(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	s := sim.New()
	strategy := &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100}
	d, err := NewDispatcher(s, strategy, rates, 1, core.Aging{Coefficient: .05, Exponent: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	queries := queriesAt([]core.Time{0, 0, 0, 0, 0, 0, 0, 0})
	d.SubmitAll(queries)
	s.Run()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	for _, o := range d.Outcomes() {
		if o.Expired {
			t.Errorf("%s expired with expiry disabled", o.Query.ID)
		}
	}
	if got := len(d.Outcomes()); got != len(queries) {
		t.Errorf("completed %d of %d", got, len(queries))
	}
	if d.Shed() != 0 {
		t.Errorf("Shed() = %d, want 0", d.Shed())
	}
}

// TestDispatcherShedsOnArrivalWhileBusy: expiry is checked at every
// dispatch decision, including arrivals while all slots are occupied, so a
// dead query does not linger in the queue until a slot frees.
func TestDispatcherShedsLowValueImmediately(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	s := sim.New()
	strategy := &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100}
	d, err := NewDispatcher(s, strategy, rates, 1, core.Aging{})
	if err != nil {
		t.Fatal(err)
	}
	// Epsilon at the full business value: the horizon is zero, so every
	// query is already worthless on arrival.
	d.SetExpiry(1)
	d.SubmitAll(queriesAt([]core.Time{0, 5}))
	s.Run()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Shed() != 2 {
		t.Fatalf("Shed() = %d, want 2", d.Shed())
	}
	for _, o := range d.Outcomes() {
		if !o.Expired || o.Wait != 0 {
			t.Errorf("%s: expired=%v wait=%v, want immediate shed", o.Query.ID, o.Expired, o.Wait)
		}
	}
}

// TestEvaluatorSkipsExpiredMembers: in the serialized GA evaluation model,
// a member whose horizon passes while earlier members hold the coordinator
// is recorded as expired without advancing the clock.
func TestEvaluatorSkipsExpiredMembers(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	ev := &Evaluator{Planner: planner, Catalog: catalog, Horizon: 100, Epsilon: .9}

	queries := queriesAt([]core.Time{0, 0, 0})
	horizon := queries[0].ValueHorizon(rates, .9) // ≈ 2.05 minutes
	res, err := ev.RunSequence(queries, []int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	first := res.Outcomes[0]
	if first.Expired {
		t.Fatal("head of sequence expired at decision time 0")
	}
	if first.Plan.ResultAt() <= horizon {
		t.Skipf("first query finished in %v, inside the %v horizon; workload too fast to force expiry", first.Plan.ResultAt(), horizon)
	}
	var sawExpired bool
	var wantTotal float64
	for _, o := range res.Outcomes[1:] {
		if !o.Expired {
			continue
		}
		sawExpired = true
		if o.Value != 0 {
			t.Errorf("expired %s has value %v", o.Query.ID, o.Value)
		}
	}
	for _, o := range res.Outcomes {
		wantTotal += o.Value
	}
	if !sawExpired {
		t.Fatal("no member expired behind the first query")
	}
	if math.Abs(res.TotalValue-wantTotal) > 1e-12 {
		t.Errorf("TotalValue %v, want %v", res.TotalValue, wantTotal)
	}
	// The clock only advanced for executed members.
	if res.Makespan != first.Plan.ResultAt() && res.Makespan <= horizon {
		t.Errorf("makespan %v inconsistent with executed members", res.Makespan)
	}
}

// TestEvaluatorEpsilonZeroKeepsLegacyBehavior: the zero value of Epsilon
// must leave RunSequence semantics untouched for existing callers (GA
// optimization, fig reproductions).
func TestEvaluatorEpsilonZeroKeepsLegacyBehavior(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	ev := &Evaluator{Planner: planner, Catalog: catalog, Horizon: 100}
	res, err := ev.RunSequence(queriesAt([]core.Time{0, 0, 0}), []int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Expired {
			t.Errorf("%s expired with epsilon unset", o.Query.ID)
		}
		if o.Value <= 0 {
			t.Errorf("%s value %v", o.Query.ID, o.Value)
		}
	}
}
