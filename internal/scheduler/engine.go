package scheduler

import (
	"fmt"
	"sync"

	"ivdss/internal/core"
	"ivdss/internal/metrics"
)

// Dispatch is one scheduling decision handed to an Executor: the query,
// the plan that won the dispatch ranking, and the opaque payload its
// submitter attached (the live server carries the parsed statement and the
// waiting client's reply channel there; the simulator carries nothing).
type Dispatch struct {
	Query core.Query
	Plan  core.Plan
	// Payload is whatever the submitter passed to Submit/SubmitGroup.
	Payload any
	// MQOFallback marks a query whose workload formation or GA ordering
	// failed, so it was queued in plain submission order instead.
	MQOFallback bool
}

// Executor runs one dispatched query and reports its outcome. done must be
// called exactly once, never synchronously from inside Execute: the engine
// frees the execution slot and dispatches the next query from it. The DES
// driver models execution on virtual time (PlanExecutor); the live server
// executes the plan for real.
type Executor interface {
	Execute(d Dispatch, done func(core.Outcome))
}

// PlanExecutor models execution on the clock: the report arrives when the
// dispatched plan says it does, and the outcome carries the plan's own
// latencies and information value. This is the evaluation model the
// paper's simulator uses.
type PlanExecutor struct {
	Clock Clock
	Rates core.DiscountRates
}

var _ Executor = PlanExecutor{}

// Execute implements Executor.
func (e PlanExecutor) Execute(d Dispatch, done func(core.Outcome)) {
	plan := d.Plan
	q := d.Query
	e.Clock.AfterFunc(plan.ResultAt()-e.Clock.Now(), func() {
		lat := plan.Latencies()
		done(core.Outcome{
			Query:     q,
			Plan:      plan,
			Latencies: lat,
			Value:     core.InformationValue(q.BusinessValue, lat, e.Rates),
			Wait:      plan.Start - q.SubmitAt,
		})
	})
}

// EngineConfig wires a scheduling engine to its time source, executor, and
// policies.
type EngineConfig struct {
	Clock    Clock
	Executor Executor
	// Strategy plans candidates at dispatch time; the highest effective
	// value (IV + aging boost) wins the free slot.
	Strategy Strategy
	// Rates price the candidate plans during dispatch ranking.
	Rates core.DiscountRates
	// Slots is the number of concurrent executions (DES coordinator slots,
	// live worker parallelism).
	Slots int
	// Aging is the Section 3.3 anti-starvation policy; the zero value
	// disables it, making dispatch purely value-maximizing.
	Aging core.Aging
	// Window is the micro-batch window in experiment minutes: queries
	// arriving within one open window are formed into workloads and
	// GA-ordered together before any of them dispatches (continuous MQO).
	// Zero dispatches each arrival individually.
	Window core.Duration
	// GA parameterizes workload ordering; per-workload seeds derive from
	// GA.Seed so concurrent engines stay deterministic.
	GA GAConfig
	// Evaluator scores candidate orders during workload formation. Required
	// when Window > 0 or groups are submitted; formation falls back to
	// submission order without it.
	Evaluator *Evaluator
	// FIFO dispatches strictly in submission order, planning only the
	// chosen query — the "live path without IVQP dispatch" baseline.
	FIFO bool
	// MaxQueue bounds how many queries may wait (excluding the ones
	// executing); Submit refuses arrivals beyond it. Zero is unbounded.
	MaxQueue int
	// Victim, when set alongside MaxQueue, turns queue-full refusal into
	// policy-driven eviction: an arrival that finds the queue full offers
	// the waiting queries (in submission order) to Victim, which returns
	// the index of the one to evict in the arrival's favor — or -1 to
	// refuse the arrival as usual. The evicted query leaves as an expired
	// outcome through OnDrop. Group submissions never evict; they stay
	// all-or-nothing. Victim runs under the engine lock and must not call
	// back into the engine.
	Victim func(arriving core.Query, queued []core.Query) int
	// HaltOnPlanError stops the engine at the first planning failure,
	// surfacing it via Err — the DES contract, where a plan error is a
	// configuration bug. When false the failing query is dropped with
	// Outcome.Err set and scheduling continues — the live contract, where
	// one query's failure must not stall the server.
	HaltOnPlanError bool
	// RecordOutcomes keeps every outcome in memory for Outcomes(). Leave
	// false on long-running servers.
	RecordOutcomes bool
	// Stats, when set, receives the scheduling metrics
	// (workloads_formed_total, workload_size, mqo_iv_gain,
	// mqo_fallback_total, aging_boost_applied_total).
	Stats *metrics.Registry
	// OnDrop is invoked (outside the engine lock) for every query that
	// leaves the engine without executing: expired in the queue
	// (Outcome.Expired) or failed to plan (Outcome.Err). The payload is the
	// one given at submission.
	OnDrop func(o core.Outcome, payload any)
}

// workloadSizeBounds buckets the workload_size histogram.
var workloadSizeBounds = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// ivGainBounds buckets the mqo_iv_gain histogram (GA total IV minus FIFO
// total IV per formed workload).
var ivGainBounds = []float64{.01, .02, .05, .1, .2, .5, 1, 2, 5, 10}

// Engine is the clock-agnostic scheduling core shared by the DES
// dispatcher and the live DSS server: arrivals are buffered in a
// micro-batch window, formed into workloads of range-overlapping queries,
// GA-ordered for total information value, and dispatched
// highest-effective-value-first with horizon shedding — the paper's
// Sections 3.1–3.3 as one pipeline, parameterized over the Clock and
// Executor so virtual and wall-clock drivers run identical decisions.
type Engine struct {
	cfg EngineConfig

	mu      sync.Mutex
	epsilon float64
	// pending buffers arrivals while a micro-batch window is open.
	pending    []*entry
	windowOpen bool
	// flat holds ready queries in submission order (singletons and
	// fallbacks); runs holds GA-ordered workloads, each dispatching its
	// members in order (only the head competes for a slot).
	flat []*entry
	runs []*run
	busy int
	// workloadSeq derives per-workload GA seeds.
	workloadSeq int64
	outcomes    []core.Outcome
	expired     int
	halted      error
	stopped     bool
}

// entry is one queued query plus its submitter's payload.
type entry struct {
	q        core.Query
	payload  any
	fallback bool
}

// run is a formed workload mid-execution: members dispatch in GA order.
type run struct {
	members []*entry
}

// NewEngine validates the configuration and returns an idle engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Clock == nil || cfg.Executor == nil || cfg.Strategy == nil {
		return nil, fmt.Errorf("scheduler: engine needs a clock, an executor, and a strategy")
	}
	if cfg.Slots < 1 {
		return nil, fmt.Errorf("scheduler: engine needs at least one slot, got %d", cfg.Slots)
	}
	if err := cfg.Rates.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Aging.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("scheduler: micro-batch window %v must be non-negative", cfg.Window)
	}
	if cfg.Window > 0 && cfg.Evaluator == nil {
		return nil, fmt.Errorf("scheduler: a micro-batch window needs an evaluator")
	}
	e := &Engine{cfg: cfg}
	if cfg.Stats != nil {
		// Pre-create the scheduling metrics so a dump shows them at zero.
		cfg.Stats.Counter("workloads_formed_total")
		cfg.Stats.Counter("mqo_fallback_total")
		cfg.Stats.Counter("aging_boost_applied_total")
		cfg.Stats.Histogram("workload_size", workloadSizeBounds)
		cfg.Stats.Histogram("mqo_iv_gain", ivGainBounds)
	}
	return e, nil
}

// SetEpsilon enables value-horizon expiry: a queued query whose best-case
// information value has dropped below epsilon by the time a dispatch
// decision is made is shed instead of planned, recorded as an expired
// outcome. The check runs on the raw information-value horizon — the
// anti-starvation aging boost raises a query's dispatch priority but
// cannot resurrect value that has already decayed away. Zero or negative
// epsilon disables expiry (the default).
func (e *Engine) SetEpsilon(epsilon float64) {
	e.mu.Lock()
	e.epsilon = epsilon
	e.mu.Unlock()
}

// Submit offers one query to the engine. It returns false — and takes no
// ownership — when MaxQueue is exceeded or the engine has stopped. With a
// micro-batch window configured the query waits for the window to close
// before it can dispatch; otherwise it competes for a slot immediately.
func (e *Engine) Submit(q core.Query, payload any) bool {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return false
	}
	var evictions []action
	if e.cfg.MaxQueue > 0 && e.queuedLocked() >= e.cfg.MaxQueue {
		if e.cfg.Victim == nil {
			e.mu.Unlock()
			return false
		}
		queued := e.queuedEntriesLocked()
		qs := make([]core.Query, len(queued))
		for i, en := range queued {
			qs[i] = en.q
		}
		idx := e.cfg.Victim(q, qs)
		if idx < 0 || idx >= len(queued) {
			e.mu.Unlock()
			return false
		}
		e.evictLocked(queued[idx], &evictions)
	}
	en := &entry{q: q, payload: payload}
	if e.cfg.Window > 0 {
		e.pending = append(e.pending, en)
		if !e.windowOpen {
			e.windowOpen = true
			e.cfg.Clock.AfterFunc(e.cfg.Window, e.closeWindow)
		}
		e.mu.Unlock()
		e.perform(evictions)
		return true
	}
	e.flat = append(e.flat, en)
	acts := e.decideLocked()
	e.mu.Unlock()
	e.perform(append(evictions, acts...))
	return true
}

// queuedEntriesLocked lists every waiting query in deterministic order:
// window buffer first, then the flat queue, then run members in workload
// order — the same order Victim sees.
func (e *Engine) queuedEntriesLocked() []*entry {
	out := make([]*entry, 0, e.queuedLocked())
	out = append(out, e.pending...)
	out = append(out, e.flat...)
	for _, r := range e.runs {
		out = append(out, r.members...)
	}
	return out
}

// evictLocked removes one waiting entry in favor of a new arrival,
// recording it as an expired (shed) outcome.
func (e *Engine) evictLocked(victim *entry, acts *[]action) {
	remove := func(list []*entry) ([]*entry, bool) {
		for i, en := range list {
			if en == victim {
				return append(list[:i], list[i+1:]...), true
			}
		}
		return list, false
	}
	var found bool
	if e.pending, found = remove(e.pending); !found {
		if e.flat, found = remove(e.flat); !found {
			for i, r := range e.runs {
				if r.members, found = remove(r.members); found {
					if len(r.members) == 0 {
						e.runs = append(e.runs[:i], e.runs[i+1:]...)
					}
					break
				}
			}
		}
	}
	if !found {
		return
	}
	o := core.Outcome{Query: victim.q, Wait: e.cfg.Clock.Now() - victim.q.SubmitAt, Expired: true}
	if e.cfg.RecordOutcomes {
		e.outcomes = append(e.outcomes, o)
	}
	e.expired++
	*acts = append(*acts, action{drop: &o, dropPl: victim.payload})
}

// SubmitGroup offers an explicit workload (a client batch). Admission is
// all-or-nothing against MaxQueue. The group is formed into workloads and
// GA-ordered immediately, independent of the micro-batch window: the
// client asked for MQO over exactly this set.
func (e *Engine) SubmitGroup(queries []core.Query, payloads []any) bool {
	if len(queries) != len(payloads) {
		panic(fmt.Sprintf("scheduler: %d payloads for %d queries", len(payloads), len(queries)))
	}
	e.mu.Lock()
	if e.stopped || (e.cfg.MaxQueue > 0 && e.queuedLocked()+len(queries) > e.cfg.MaxQueue) {
		e.mu.Unlock()
		return false
	}
	entries := make([]*entry, len(queries))
	for i, q := range queries {
		entries[i] = &entry{q: q, payload: payloads[i]}
	}
	e.formLocked(entries)
	acts := e.decideLocked()
	e.mu.Unlock()
	e.perform(acts)
	return true
}

// closeWindow fires when the micro-batch window elapses: the buffered
// arrivals become workloads and dispatch begins.
func (e *Engine) closeWindow() {
	e.mu.Lock()
	batch := e.pending
	e.pending = nil
	e.windowOpen = false
	if e.stopped || len(batch) == 0 {
		e.mu.Unlock()
		return
	}
	e.formLocked(batch)
	acts := e.decideLocked()
	e.mu.Unlock()
	e.perform(acts)
}

// formLocked groups entries into workloads of range-overlapping queries
// and GA-orders each one (Section 3.2). Any failure — missing evaluator,
// planning error during range derivation, invalid GA config — falls back
// to plain submission order for the whole group, marks every entry, and
// counts mqo_fallback_total: MQO is an optimization, never a correctness
// gate.
func (e *Engine) formLocked(entries []*entry) {
	if len(entries) == 0 {
		return
	}
	if len(entries) == 1 {
		e.flat = append(e.flat, entries[0])
		return
	}
	newFlat, newRuns, err := e.formWorkloads(entries)
	if err != nil {
		if e.cfg.Stats != nil {
			e.cfg.Stats.Counter("mqo_fallback_total").Inc()
		}
		for _, en := range entries {
			en.fallback = true
		}
		e.flat = append(e.flat, entries...)
		return
	}
	e.flat = append(e.flat, newFlat...)
	e.runs = append(e.runs, newRuns...)
}

// formWorkloads does the fallible part of formation: derive candidate
// execution ranges, merge overlapping ones into workloads, and order each
// multi-member workload with the GA, maximizing total information value as
// evaluated from now on the serialized-coordinator model.
func (e *Engine) formWorkloads(entries []*entry) (flat []*entry, runs []*run, err error) {
	ev := e.cfg.Evaluator
	if ev == nil {
		return nil, nil, fmt.Errorf("scheduler: no evaluator for workload formation")
	}
	queries := make([]core.Query, len(entries))
	for i, en := range entries {
		queries[i] = en.q
	}
	widths, err := PlanRanges(queries, ev, 1e6)
	if err != nil {
		return nil, nil, err
	}
	workloads, err := FormWorkloads(queries, widths)
	if err != nil {
		return nil, nil, err
	}
	now := e.cfg.Clock.Now()
	for _, w := range workloads {
		if len(w.Indices) == 1 {
			flat = append(flat, entries[w.Indices[0]])
			continue
		}
		members := make([]core.Query, len(w.Indices))
		for j, qi := range w.Indices {
			members[j] = queries[qi]
		}
		wcfg := e.cfg.GA
		wcfg.Seed = e.cfg.GA.Seed + e.workloadSeq
		e.workloadSeq++
		order, best, _, err := OptimizeOrder(len(members), func(order []int) (float64, error) {
			r, rerr := ev.RunSequence(members, order, now)
			if rerr != nil {
				return 0, rerr
			}
			return r.TotalValue, nil
		}, wcfg)
		if err != nil {
			return nil, nil, err
		}
		r := &run{members: make([]*entry, len(order))}
		for pos, local := range order {
			r.members[pos] = entries[w.Indices[local]]
		}
		runs = append(runs, r)
		if e.cfg.Stats != nil {
			e.cfg.Stats.Counter("workloads_formed_total").Inc()
			e.cfg.Stats.Histogram("workload_size", workloadSizeBounds).Observe(float64(len(members)))
			// The GA seeds its population with the identity permutation, so
			// the gain over FIFO is non-negative by construction.
			identity := make([]int, len(members))
			for i := range identity {
				identity[i] = i
			}
			if fifo, ferr := ev.RunSequence(members, identity, now); ferr == nil {
				e.cfg.Stats.Histogram("mqo_iv_gain", ivGainBounds).Observe(best - fifo.TotalValue)
			}
		}
	}
	return flat, runs, nil
}

// action is scheduling work decided under the lock but performed outside
// it, so executors and drop callbacks can re-enter the engine freely.
type action struct {
	launch *Dispatch
	drop   *core.Outcome
	dropPl any
}

// perform runs the actions collected by a decision pass.
func (e *Engine) perform(acts []action) {
	for _, a := range acts {
		switch {
		case a.launch != nil:
			e.cfg.Executor.Execute(*a.launch, e.complete)
		case a.drop != nil && e.cfg.OnDrop != nil:
			e.cfg.OnDrop(*a.drop, a.dropPl)
		}
	}
}

// complete is the done callback handed to every Execute: account the
// outcome, free the slot, and dispatch what's next.
func (e *Engine) complete(o core.Outcome) {
	e.mu.Lock()
	if e.cfg.RecordOutcomes {
		e.outcomes = append(e.outcomes, o)
	}
	e.busy--
	acts := e.decideLocked()
	e.mu.Unlock()
	e.perform(acts)
}

// candidate is one query eligible for the next free slot: a flat entry or
// the head of a run.
type candidate struct {
	en *entry
	r  *run // nil for flat entries
}

// candidatesLocked lists dispatch candidates in deterministic order: flat
// entries by arrival, then run heads by workload creation.
func (e *Engine) candidatesLocked() []candidate {
	cands := make([]candidate, 0, len(e.flat)+len(e.runs))
	for _, en := range e.flat {
		cands = append(cands, candidate{en: en})
	}
	for _, r := range e.runs {
		cands = append(cands, candidate{en: r.members[0], r: r})
	}
	return cands
}

// removeLocked takes a candidate out of its queue.
func (e *Engine) removeLocked(c candidate) {
	if c.r != nil {
		c.r.members = c.r.members[1:]
		if len(c.r.members) == 0 {
			for i, r := range e.runs {
				if r == c.r {
					e.runs = append(e.runs[:i], e.runs[i+1:]...)
					break
				}
			}
		}
		return
	}
	for i, en := range e.flat {
		if en == c.en {
			e.flat = append(e.flat[:i], e.flat[i+1:]...)
			return
		}
	}
}

// decideLocked is the dispatch loop: shed expired queries, then fill free
// slots with the highest-effective-value candidates (or strictly by
// submission order in FIFO mode). It returns the launches and drops to
// perform outside the lock.
func (e *Engine) decideLocked() []action {
	var acts []action
	e.shedExpiredLocked(&acts)
	for e.halted == nil && !e.stopped && e.busy < e.cfg.Slots {
		cands := e.candidatesLocked()
		if len(cands) == 0 {
			break
		}
		now := e.cfg.Clock.Now()
		if e.cfg.FIFO {
			best := 0
			for i := 1; i < len(cands); i++ {
				if cands[i].en.q.SubmitAt < cands[best].en.q.SubmitAt {
					best = i
				}
			}
			c := cands[best]
			plan, err := e.cfg.Strategy.Plan(c.en.q, now)
			if err != nil {
				e.planFailureLocked(c, now, err, &acts)
				continue
			}
			e.launchLocked(c, plan, &acts)
			continue
		}
		// Value mode plans every candidate — exactly the paper's dispatcher:
		// the free slot goes to the highest effective value, ties to the
		// earliest-queued.
		type scored struct {
			c    candidate
			plan core.Plan
			iv   float64
		}
		ok := make([]scored, 0, len(cands))
		for _, c := range cands {
			plan, err := e.cfg.Strategy.Plan(c.en.q, now)
			if err != nil {
				e.planFailureLocked(c, now, err, &acts)
				if e.halted != nil {
					return acts
				}
				continue
			}
			ok = append(ok, scored{c, plan, plan.Value(e.cfg.Rates)})
		}
		if len(ok) == 0 {
			continue // failed candidates were dropped; rescan
		}
		bestIdx, rawIdx := -1, -1
		bestEff, rawBest := 0.0, 0.0
		for i, sc := range ok {
			eff := e.cfg.Aging.EffectiveValue(sc.iv, now-sc.c.en.q.SubmitAt)
			if bestIdx < 0 || eff > bestEff {
				bestIdx, bestEff = i, eff
			}
			if rawIdx < 0 || sc.iv > rawBest {
				rawIdx, rawBest = i, sc.iv
			}
		}
		if e.cfg.Aging.Enabled() && bestIdx != rawIdx && e.cfg.Stats != nil {
			// The boost changed the decision: a longer-queued query beat the
			// raw value maximizer.
			e.cfg.Stats.Counter("aging_boost_applied_total").Inc()
		}
		e.launchLocked(ok[bestIdx].c, ok[bestIdx].plan, &acts)
	}
	return acts
}

// launchLocked claims a slot for the chosen candidate.
func (e *Engine) launchLocked(c candidate, plan core.Plan, acts *[]action) {
	e.busy++
	e.removeLocked(c)
	*acts = append(*acts, action{launch: &Dispatch{
		Query:       c.en.q,
		Plan:        plan,
		Payload:     c.en.payload,
		MQOFallback: c.en.fallback,
	}})
}

// planFailureLocked handles a candidate that cannot be planned: halt the
// engine (DES contract) or drop the query (live contract).
func (e *Engine) planFailureLocked(c candidate, now core.Time, err error, acts *[]action) {
	if e.cfg.HaltOnPlanError {
		e.halted = fmt.Errorf("scheduler: dispatch %s at %v: %w", c.en.q.ID, now, err)
		return
	}
	e.removeLocked(c)
	o := core.Outcome{Query: c.en.q, Wait: now - c.en.q.SubmitAt, Err: err}
	if e.cfg.RecordOutcomes {
		e.outcomes = append(e.outcomes, o)
	}
	*acts = append(*acts, action{drop: &o, dropPl: c.en.payload})
}

// shedExpiredLocked drops every queued query whose value horizon has
// passed, recording each as an expired outcome. Runs at every dispatch
// decision — including arrivals while all slots are busy — so a query
// never occupies queue space after its value is gone. Queries buffered in
// an open micro-batch window are exempt until the window closes (it is
// short by construction); expiry catches them at formation's first
// dispatch decision.
func (e *Engine) shedExpiredLocked(acts *[]action) {
	if e.epsilon <= 0 {
		return
	}
	now := e.cfg.Clock.Now()
	shed := func(en *entry) bool {
		if now-en.q.SubmitAt < en.q.ValueHorizon(e.cfg.Rates, e.epsilon) {
			return false
		}
		o := core.Outcome{Query: en.q, Wait: now - en.q.SubmitAt, Expired: true}
		if e.cfg.RecordOutcomes {
			e.outcomes = append(e.outcomes, o)
		}
		e.expired++
		*acts = append(*acts, action{drop: &o, dropPl: en.payload})
		return true
	}
	kept := e.flat[:0]
	for _, en := range e.flat {
		if !shed(en) {
			kept = append(kept, en)
		}
	}
	e.flat = kept
	keptRuns := e.runs[:0]
	for _, r := range e.runs {
		keptMembers := r.members[:0]
		for _, en := range r.members {
			if !shed(en) {
				keptMembers = append(keptMembers, en)
			}
		}
		r.members = keptMembers
		if len(r.members) > 0 {
			keptRuns = append(keptRuns, r)
		}
	}
	e.runs = keptRuns
}

// queuedLocked counts queries waiting (not executing): window buffer, flat
// queue, and unfinished run members.
func (e *Engine) queuedLocked() int {
	n := len(e.pending) + len(e.flat)
	for _, r := range e.runs {
		n += len(r.members)
	}
	return n
}

// Stop prevents further submissions and dispatches. In-flight executions
// finish and are accounted; queued queries stay queued (their submitters
// observe shutdown through their own channels).
func (e *Engine) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
}

// Outcomes returns every recorded result in decision order (only with
// RecordOutcomes): completions carry their plan and value, expired entries
// are marked Expired with zero value.
func (e *Engine) Outcomes() []core.Outcome {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.outcomes
}

// Shed returns how many queries expired in the queue and were dropped.
func (e *Engine) Shed() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.expired
}

// QueueLen returns how many queries are waiting (excluding executions).
func (e *Engine) QueueLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queuedLocked()
}

// Pending returns the number of queries still waiting or running.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queuedLocked() + e.busy
}

// Err reports the first planning failure under HaltOnPlanError; the
// engine stops issuing work after one.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.halted
}
