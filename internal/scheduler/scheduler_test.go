package scheduler

import (
	"fmt"
	"math"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/federation"
	"ivdss/internal/replication"
	"ivdss/internal/sim"
	"ivdss/internal/stats"
)

func newTestSource(seed int64) *stats.Source { return stats.NewSource(seed) }

// testWorld builds a small hybrid deployment: four tables on two sites,
// two of them replicated on periodic schedules.
func testWorld(t *testing.T, rates core.DiscountRates) (*federation.Catalog, *core.Planner) {
	t.Helper()
	placement, err := federation.NewPlacement(map[core.TableID]core.SiteID{
		"t1": 1, "t2": 1, "t3": 2, "t4": 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := replication.NewManager()
	for _, spec := range []struct {
		id     core.TableID
		period core.Duration
	}{{"t1", 10}, {"t3", 15}} {
		sched, err := replication.Periodic(spec.period, 0, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.Register(spec.id, sched); err != nil {
			t.Fatal(err)
		}
	}
	catalog, err := federation.NewCatalog(placement, mgr)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := core.NewPlanner(
		&costmodel.CountModel{LocalProcess: 2, PerBaseTable: 2},
		core.PlannerConfig{Rates: rates, Horizon: 200},
	)
	if err != nil {
		t.Fatal(err)
	}
	return catalog, planner
}

func queriesAt(times []core.Time, tables ...[]core.TableID) []core.Query {
	out := make([]core.Query, len(times))
	for i, at := range times {
		tbls := []core.TableID{"t1", "t2"}
		if i < len(tables) {
			tbls = tables[i]
		}
		out[i] = core.Query{
			ID:            fmt.Sprintf("q%d", i+1),
			Tables:        tbls,
			BusinessValue: 1,
			SubmitAt:      at,
		}
	}
	return out
}

func TestRunSequenceSerializesCoordinator(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	ev := &Evaluator{Planner: planner, Catalog: catalog, Horizon: 100}

	queries := queriesAt([]core.Time{0, 0, 0})
	res, err := ev.RunSequence(queries, []int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	// Later queries in the order must not start before earlier ones end.
	for i := 1; i < len(res.Outcomes); i++ {
		prev, cur := res.Outcomes[i-1], res.Outcomes[i]
		if cur.Plan.Start < prev.Plan.ResultAt() {
			t.Errorf("query %d started at %v before predecessor finished at %v",
				i, cur.Plan.Start, prev.Plan.ResultAt())
		}
	}
	// Values decline down the sequence (same query shape, more waiting).
	if res.Outcomes[2].Value > res.Outcomes[0].Value {
		t.Errorf("third query value %v exceeds first %v", res.Outcomes[2].Value, res.Outcomes[0].Value)
	}
	if res.Makespan <= 0 || res.TotalValue <= 0 {
		t.Errorf("result = %+v", res)
	}
	if got := res.MeanValue(); math.Abs(got-res.TotalValue/3) > 1e-12 {
		t.Errorf("MeanValue = %v", got)
	}
}

func TestRunSequenceValidatesOrder(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	ev := &Evaluator{Planner: planner, Catalog: catalog}
	queries := queriesAt([]core.Time{0, 1})
	for _, order := range [][]int{{0}, {0, 0}, {0, 5}, {0, -1}} {
		if _, err := ev.RunSequence(queries, order, 0); err == nil {
			t.Errorf("order %v accepted", order)
		}
	}
	if _, err := (&Evaluator{}).RunSequence(queries, []int{0, 1}, 0); err == nil {
		t.Error("evaluator without planner accepted")
	}
}

func TestOptimizeOrderFindsPlantedOptimum(t *testing.T) {
	// Fitness rewards a specific permutation's pairwise order; the GA must
	// find (or closely approach) it.
	want := []int{3, 1, 4, 0, 2, 5}
	pos := make([]int, len(want))
	for i, g := range want {
		pos[g] = i
	}
	fitness := func(order []int) (float64, error) {
		score := 0.0
		for i, g := range order {
			if pos[g] == i {
				score++
			}
		}
		return score, nil
	}
	got, fit, st, err := OptimizeOrder(len(want), fitness, GAConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fit < float64(len(want)) {
		t.Errorf("GA fitness %v did not reach optimum %d (order %v)", fit, len(want), got)
	}
	if st.Evaluations == 0 || st.Generations != 50 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOptimizeOrderNeverWorseThanFIFO(t *testing.T) {
	// Identity is seeded into the initial population, so the GA result can
	// never be worse than FIFO for any fitness function.
	fitness := func(order []int) (float64, error) {
		// FIFO-favouring fitness.
		score := 0.0
		for i, g := range order {
			if g == i {
				score += 10
			}
		}
		return score, nil
	}
	_, fit, _, err := OptimizeOrder(8, fitness, GAConfig{Seed: 1, Generations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fit < 80 {
		t.Errorf("GA fitness %v below the seeded FIFO fitness 80", fit)
	}
}

func TestOptimizeOrderSingleQuery(t *testing.T) {
	order, fit, _, err := OptimizeOrder(1, func([]int) (float64, error) { return 7, nil }, GAConfig{})
	if err != nil || len(order) != 1 || fit != 7 {
		t.Errorf("single query: %v %v %v", order, fit, err)
	}
}

func TestOptimizeOrderConfigValidation(t *testing.T) {
	fit := func([]int) (float64, error) { return 0, nil }
	if _, _, _, err := OptimizeOrder(0, fit, GAConfig{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, _, err := OptimizeOrder(3, fit, GAConfig{Population: 1}); err == nil {
		t.Error("population 1 accepted")
	}
	if _, _, _, err := OptimizeOrder(3, fit, GAConfig{MutationRate: 2}); err == nil {
		t.Error("mutation rate 2 accepted")
	}
	if _, _, _, err := OptimizeOrder(3, fit, GAConfig{Elite: 40, Population: 40}); err == nil {
		t.Error("elite == population accepted")
	}
}

func TestOptimizeOrderPropagatesFitnessError(t *testing.T) {
	boom := fmt.Errorf("boom")
	_, _, _, err := OptimizeOrder(4, func([]int) (float64, error) { return 0, boom }, GAConfig{})
	if err == nil {
		t.Error("fitness error swallowed")
	}
}

func TestOrderCrossoverProducesPermutations(t *testing.T) {
	srcLike := func(seed int64) {
		a := []int{0, 1, 2, 3, 4, 5, 6}
		b := []int{6, 5, 4, 3, 2, 1, 0}
		src := newTestSource(seed)
		for trial := 0; trial < 200; trial++ {
			child := orderCrossover(a, b, src)
			if len(child) != len(a) {
				t.Fatalf("child length %d", len(child))
			}
			seen := make([]bool, len(a))
			for _, g := range child {
				if g < 0 || g >= len(a) || seen[g] {
					t.Fatalf("child %v is not a permutation", child)
				}
				seen[g] = true
			}
		}
	}
	srcLike(1)
	srcLike(99)
}

func TestFormWorkloads(t *testing.T) {
	queries := queriesAt([]core.Time{0, 5, 50, 52, 200})
	widths := []core.Duration{10, 10, 10, 10, 10}
	ws, err := FormWorkloads(queries, widths)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("workloads = %d, want 3 (got %+v)", len(ws), ws)
	}
	if len(ws[0].Indices) != 2 || len(ws[1].Indices) != 2 || len(ws[2].Indices) != 1 {
		t.Errorf("workload sizes = %v %v %v", ws[0].Indices, ws[1].Indices, ws[2].Indices)
	}
	if _, err := FormWorkloads(queries, widths[:2]); err == nil {
		t.Error("mismatched widths accepted")
	}
}

func TestFormWorkloadsChainedOverlap(t *testing.T) {
	// 0-10, 8-18, 16-26: transitive overlap forms one workload.
	queries := queriesAt([]core.Time{0, 8, 16})
	ws, err := FormWorkloads(queries, []core.Duration{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || len(ws[0].Indices) != 3 {
		t.Errorf("workloads = %+v", ws)
	}
}

func TestPlanRanges(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	ev := &Evaluator{Planner: planner, Catalog: catalog, Horizon: 100}
	queries := queriesAt([]core.Time{0, 10})
	widths, err := PlanRanges(queries, ev, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range widths {
		if w <= 0 || math.IsInf(w, 1) {
			t.Errorf("width[%d] = %v", i, w)
		}
	}
	if _, err := PlanRanges(queries, ev, 0); err == nil {
		t.Error("zero fallback accepted")
	}
}

func TestPlanRangesZeroRatesFallsBack(t *testing.T) {
	catalog, _ := testWorld(t, core.DiscountRates{})
	planner, err := core.NewPlanner(&costmodel.CountModel{LocalProcess: 2, PerBaseTable: 2},
		core.PlannerConfig{Rates: core.DiscountRates{}})
	if err != nil {
		t.Fatal(err)
	}
	ev := &Evaluator{Planner: planner, Catalog: catalog} // no horizon either
	queries := queriesAt([]core.Time{0})
	widths, err := PlanRanges(queries, ev, 123)
	if err != nil {
		t.Fatal(err)
	}
	if widths[0] != 123 {
		t.Errorf("width = %v, want fallback 123", widths[0])
	}
}

func TestScheduleMQOBeatsOrMatchesFIFO(t *testing.T) {
	rates := core.DiscountRates{CL: .15, SL: .15}
	catalog, planner := testWorld(t, rates)
	ev := &Evaluator{Planner: planner, Catalog: catalog, Horizon: 100}

	// A bursty workload with mixed table sets, the regime where ordering
	// matters (Figure 9).
	queries := queriesAt(
		[]core.Time{0, 0.5, 1, 1.5, 2, 2.5},
		[]core.TableID{"t1", "t2"},
		[]core.TableID{"t3"},
		[]core.TableID{"t1", "t3", "t4"},
		[]core.TableID{"t2"},
		[]core.TableID{"t1"},
		[]core.TableID{"t4", "t2"},
	)
	fifo, err := ScheduleFIFO(queries, ev)
	if err != nil {
		t.Fatal(err)
	}
	mqo, err := ScheduleMQO(queries, ev, GAConfig{Seed: 5, Generations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if mqo.TotalValue < fifo.TotalValue-1e-9 {
		t.Errorf("MQO total %v worse than FIFO %v", mqo.TotalValue, fifo.TotalValue)
	}
	if len(mqo.Outcomes) != len(queries) {
		t.Errorf("MQO outcomes = %d", len(mqo.Outcomes))
	}
	if mqo.Evaluations == 0 {
		t.Error("GA never evaluated")
	}
	// Every query appears exactly once in the final order.
	seen := make(map[int]bool)
	for _, idx := range mqo.Order {
		if seen[idx] {
			t.Errorf("query index %d scheduled twice", idx)
		}
		seen[idx] = true
	}
}

func TestDispatcherCompletesAllQueries(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	s := sim.New()
	strategy := &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100}
	d, err := NewDispatcher(s, strategy, rates, 1, core.Aging{})
	if err != nil {
		t.Fatal(err)
	}
	queries := queriesAt([]core.Time{0, 1, 2, 3, 20})
	d.SubmitAll(queries)
	s.Run()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if len(d.Outcomes()) != 5 || d.Pending() != 0 {
		t.Fatalf("outcomes = %d, pending = %d", len(d.Outcomes()), d.Pending())
	}
	for _, o := range d.Outcomes() {
		if o.Value <= 0 || o.Value > 1 {
			t.Errorf("%s value = %v", o.Query.ID, o.Value)
		}
		if o.Latencies.CL < 0 || o.Latencies.SL < 0 {
			t.Errorf("%s latencies = %+v", o.Query.ID, o.Latencies)
		}
	}
}

func TestDispatcherBaselines(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	cost := &costmodel.CountModel{LocalProcess: 2, PerBaseTable: 2}
	queries := queriesAt([]core.Time{5, 6}) // after the t=0 syncs

	run := func(strategy Strategy) []Outcome {
		s := sim.New()
		d, err := NewDispatcher(s, strategy, rates, 1, core.Aging{})
		if err != nil {
			t.Fatal(err)
		}
		d.SubmitAll(queries)
		s.Run()
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		return d.Outcomes()
	}

	fed := run(&FixedStrategy{Catalog: catalog, Cost: cost, Kind: core.AccessBase})
	ivqp := run(&IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100})
	var fedTotal, ivqpTotal float64
	for i := range fed {
		fedTotal += fed[i].Value
		ivqpTotal += ivqp[i].Value
	}
	if ivqpTotal < fedTotal-1e-9 {
		t.Errorf("IVQP total %v below Federation %v", ivqpTotal, fedTotal)
	}
	for _, o := range fed {
		if len(o.Plan.BaseTables()) != len(o.Query.Tables) {
			t.Errorf("federation plan used a replica: %s", o.Plan.Signature())
		}
	}
}

func TestDispatcherWarehouseNeedsReplicas(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, _ := testWorld(t, rates)
	cost := &costmodel.CountModel{LocalProcess: 2}
	s := sim.New()
	d, err := NewDispatcher(s, &FixedStrategy{Catalog: catalog, Cost: cost, Kind: core.AccessReplica}, rates, 1, core.Aging{})
	if err != nil {
		t.Fatal(err)
	}
	// t2 has no replica: the warehouse strategy must fail and surface it.
	d.SubmitAll(queriesAt([]core.Time{5}))
	s.Run()
	if d.Err() == nil {
		t.Error("warehouse dispatch over unreplicated table succeeded")
	}
}

// TestDispatcherAgingPreventsStarvation reproduces the Section 3.3
// scenario: under a steady stream of high-value cheap queries, a low-value
// query starves without aging and completes with it.
func TestDispatcherAgingPreventsStarvation(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)

	var queries []core.Query
	// The victim: modest business value, arriving into an already-loaded
	// system so every dispatch decision can pass it over.
	queries = append(queries, core.Query{ID: "victim", Tables: []core.TableID{"t1"}, BusinessValue: .2, SubmitAt: 1})
	// A saturating stream of valuable queries arriving faster than they finish.
	for i := 0; i < 40; i++ {
		queries = append(queries, core.Query{
			ID:            fmt.Sprintf("hot%02d", i),
			Tables:        []core.TableID{"t1", "t2"},
			BusinessValue: 1,
			SubmitAt:      core.Time(i) * 0.5,
		})
	}

	waitOf := func(aging core.Aging) core.Duration {
		s := sim.New()
		d, err := NewDispatcher(s, &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100}, rates, 1, aging)
		if err != nil {
			t.Fatal(err)
		}
		d.SubmitAll(queries)
		s.Run()
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		for _, o := range d.Outcomes() {
			if o.Query.ID == "victim" {
				return o.Wait
			}
		}
		t.Fatal("victim never completed")
		return 0
	}

	without := waitOf(core.Aging{})
	with := waitOf(core.Aging{Coefficient: .05, Exponent: 1.5})
	if with >= without {
		t.Errorf("aging did not reduce the victim's wait: %v with vs %v without", with, without)
	}
}

func TestNewDispatcherValidation(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	strategy := &IVQPStrategy{Planner: planner, Catalog: catalog}
	s := sim.New()
	if _, err := NewDispatcher(nil, strategy, rates, 1, core.Aging{}); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := NewDispatcher(s, nil, rates, 1, core.Aging{}); err == nil {
		t.Error("nil strategy accepted")
	}
	if _, err := NewDispatcher(s, strategy, rates, 0, core.Aging{}); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewDispatcher(s, strategy, core.DiscountRates{CL: 5}, 1, core.Aging{}); err == nil {
		t.Error("bad rates accepted")
	}
	if _, err := NewDispatcher(s, strategy, rates, 1, core.Aging{Coefficient: -1}); err == nil {
		t.Error("bad aging accepted")
	}
}

func TestDispatcherMultipleSlots(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	queries := queriesAt([]core.Time{0, 0, 0, 0})

	makespan := func(slots int) core.Time {
		s := sim.New()
		d, err := NewDispatcher(s, &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100}, rates, slots, core.Aging{})
		if err != nil {
			t.Fatal(err)
		}
		d.SubmitAll(queries)
		s.Run()
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		if len(d.Outcomes()) != len(queries) {
			t.Fatalf("slots=%d: %d outcomes", slots, len(d.Outcomes()))
		}
		return s.Now()
	}
	one := makespan(1)
	four := makespan(4)
	if four >= one {
		t.Errorf("4 slots (%v) not faster than 1 slot (%v)", four, one)
	}
}

func TestDispatcherOutcomesValueSumMatchesIVFormula(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	s := sim.New()
	d, err := NewDispatcher(s, &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100}, rates, 1, core.Aging{})
	if err != nil {
		t.Fatal(err)
	}
	queries := queriesAt([]core.Time{0, 1, 7})
	d.SubmitAll(queries)
	s.Run()
	for _, o := range d.Outcomes() {
		want := core.InformationValue(o.Query.BusinessValue, o.Latencies, rates)
		if math.Abs(o.Value-want) > 1e-12 {
			t.Errorf("%s: value %v != formula %v", o.Query.ID, o.Value, want)
		}
		if o.Plan.Start < o.Query.SubmitAt {
			t.Errorf("%s: started before submission", o.Query.ID)
		}
		if o.Wait < 0 {
			t.Errorf("%s: negative wait %v", o.Query.ID, o.Wait)
		}
	}
}

func TestRunSequenceOutOfOrderSubmissionTimes(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	ev := &Evaluator{Planner: planner, Catalog: catalog, Horizon: 100}
	// Order runs the LATE query first: the early one then queues behind it.
	queries := queriesAt([]core.Time{0, 50})
	res, err := ev.RunSequence(queries, []int{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The late query cannot start before its own submission.
	if res.Outcomes[0].Plan.Start < 50 {
		t.Errorf("late query started at %v before submission", res.Outcomes[0].Plan.Start)
	}
	// The early query waited for the late one's completion.
	if res.Outcomes[1].Wait <= 0 {
		t.Errorf("early query should have waited, got %v", res.Outcomes[1].Wait)
	}
}

func TestScheduleMQOWorkloadCarryOver(t *testing.T) {
	rates := core.DiscountRates{CL: .1, SL: .1}
	catalog, planner := testWorld(t, rates)
	ev := &Evaluator{Planner: planner, Catalog: catalog, Horizon: 100}
	// Two workloads: the first is long enough to overrun the second's
	// start; the scheduler must carry the clock forward, not overlap.
	queries := queriesAt([]core.Time{0, 0.5, 1, 1.5, 8})
	res, err := ScheduleMQO(queries, ev, GAConfig{Seed: 2, Generations: 5})
	if err != nil {
		t.Fatal(err)
	}
	var lastEnd core.Time
	for _, o := range res.Outcomes {
		if o.Plan.Start < lastEnd-1e-9 {
			t.Errorf("%s started at %v before previous finished at %v", o.Query.ID, o.Plan.Start, lastEnd)
		}
		if end := o.Plan.ResultAt(); end > lastEnd {
			lastEnd = end
		}
	}
}
