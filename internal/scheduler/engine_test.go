package scheduler

import (
	"sync"
	"testing"

	"ivdss/internal/core"
	"ivdss/internal/metrics"
	"ivdss/internal/sim"
)

// equivalenceQueries is an arrival pattern dense enough that the dispatch
// ranking, aging, and expiry all make real decisions: bursts early on, a
// lull, then a second burst.
func equivalenceQueries() []core.Query {
	qs := queriesAt([]core.Time{0, 1, 2, 3, 8, 9, 30, 31})
	bvs := []float64{1, .4, .9, .3, 1, .5, .8, .6}
	for i := range qs {
		qs[i].BusinessValue = bvs[i]
	}
	qs[1].Tables = []core.TableID{"t3"}
	qs[3].Tables = []core.TableID{"t3", "t4"}
	qs[5].Tables = []core.TableID{"t1"}
	return qs
}

// TestEngineManualClockMatchesDESDispatcher is the refactor's equivalence
// proof: the DES dispatcher (engine on the simulator's virtual clock) and
// the engine on a hand-stepped clock — the shape the live server mounts it
// in — produce identical plan choices and outcome sequences for the same
// stream, including expiries and aging decisions.
func TestEngineManualClockMatchesDESDispatcher(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	aging := core.Aging{Coefficient: .05, Exponent: 1.5}
	const epsilon = .25

	catalogA, plannerA := testWorld(t, rates)
	s := sim.New()
	d, err := NewDispatcher(s, &IVQPStrategy{Planner: plannerA, Catalog: catalogA, Horizon: 100}, rates, 1, aging)
	if err != nil {
		t.Fatal(err)
	}
	d.SetExpiry(epsilon)
	d.SubmitAll(equivalenceQueries())
	s.Run()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}

	catalogB, plannerB := testWorld(t, rates)
	clock := &ManualClock{}
	eng, err := NewEngine(EngineConfig{
		Clock:           clock,
		Executor:        PlanExecutor{Clock: clock, Rates: rates},
		Strategy:        &IVQPStrategy{Planner: plannerB, Catalog: catalogB, Horizon: 100},
		Rates:           rates,
		Slots:           1,
		Aging:           aging,
		HaltOnPlanError: true,
		RecordOutcomes:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetEpsilon(epsilon)
	for _, q := range equivalenceQueries() {
		q := q
		clock.AfterFunc(core.Duration(q.SubmitAt), func() { eng.Submit(q, nil) })
	}
	clock.Run()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	a, b := d.Outcomes(), eng.Outcomes()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("outcome counts differ: dispatcher %d, manual-clock engine %d", len(a), len(b))
	}
	completed, expired := 0, 0
	for i := range a {
		if a[i].Query.ID != b[i].Query.ID {
			t.Fatalf("outcome %d: query %s vs %s", i, a[i].Query.ID, b[i].Query.ID)
		}
		if a[i].Expired != b[i].Expired {
			t.Errorf("outcome %d (%s): expired %v vs %v", i, a[i].Query.ID, a[i].Expired, b[i].Expired)
		}
		if a[i].Wait != b[i].Wait {
			t.Errorf("outcome %d (%s): wait %v vs %v", i, a[i].Query.ID, a[i].Wait, b[i].Wait)
		}
		if a[i].Value != b[i].Value {
			t.Errorf("outcome %d (%s): value %v vs %v", i, a[i].Query.ID, a[i].Value, b[i].Value)
		}
		if a[i].Plan.Signature() != b[i].Plan.Signature() {
			t.Errorf("outcome %d (%s): plan %q vs %q", i, a[i].Query.ID, a[i].Plan.Signature(), b[i].Plan.Signature())
		}
		if a[i].Expired {
			expired++
		} else {
			completed++
		}
	}
	if completed == 0 || expired == 0 {
		t.Errorf("scenario too tame: %d completed, %d expired — both paths must be exercised", completed, expired)
	}
	if d.Shed() != eng.Shed() {
		t.Errorf("shed counts differ: %d vs %d", d.Shed(), eng.Shed())
	}
}

// flagExecutor records each dispatch's MQOFallback flag before delegating
// to model execution.
type flagExecutor struct {
	inner PlanExecutor
	mu    sync.Mutex
	flags map[string]bool
}

func (f *flagExecutor) Execute(d Dispatch, done func(core.Outcome)) {
	f.mu.Lock()
	f.flags[d.Query.ID] = d.MQOFallback
	f.mu.Unlock()
	f.inner.Execute(d, done)
}

// TestEngineMicroBatchFormsWorkloads: with a window configured, arrivals
// inside it are formed into a GA-ordered workload, the formation metrics
// tick, and every member still completes.
func TestEngineMicroBatchFormsWorkloads(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	clock := &ManualClock{}
	reg := metrics.NewRegistry()
	exec := &flagExecutor{inner: PlanExecutor{Clock: clock, Rates: rates}, flags: make(map[string]bool)}
	eng, err := NewEngine(EngineConfig{
		Clock:          clock,
		Executor:       exec,
		Strategy:       &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100},
		Rates:          rates,
		Slots:          1,
		Window:         5,
		GA:             GAConfig{Seed: 1},
		Evaluator:      &Evaluator{Planner: planner, Catalog: catalog, Horizon: 100},
		RecordOutcomes: true,
		Stats:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queriesAt([]core.Time{0, 0, 0}) {
		if !eng.Submit(q, nil) {
			t.Fatalf("submit %s refused", q.ID)
		}
	}
	if got := eng.Outcomes(); len(got) != 0 {
		t.Fatalf("dispatched %d queries before the window closed", len(got))
	}
	clock.Run()
	if eng.Pending() != 0 {
		t.Fatalf("%d queries left pending", eng.Pending())
	}
	if got := len(eng.Outcomes()); got != 3 {
		t.Fatalf("outcomes = %d, want 3", got)
	}
	flat := reg.Flatten()
	if flat["workloads_formed_total"] < 1 {
		t.Errorf("workloads_formed_total = %v, want >= 1", flat["workloads_formed_total"])
	}
	if flat["mqo_fallback_total"] != 0 {
		t.Errorf("mqo_fallback_total = %v, want 0", flat["mqo_fallback_total"])
	}
	for id, fb := range exec.flags {
		if fb {
			t.Errorf("query %s dispatched with the fallback flag", id)
		}
	}
}

// TestEngineMQOFallbackMarksDispatches: when GA ordering cannot run (an
// invalid GA configuration), the group still executes — in submission
// order, with every dispatch flagged and mqo_fallback_total counted.
func TestEngineMQOFallbackMarksDispatches(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	clock := &ManualClock{}
	reg := metrics.NewRegistry()
	exec := &flagExecutor{inner: PlanExecutor{Clock: clock, Rates: rates}, flags: make(map[string]bool)}
	eng, err := NewEngine(EngineConfig{
		Clock:    clock,
		Executor: exec,
		Strategy: &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100},
		Rates:    rates,
		Slots:    1,
		// Elite exceeding the population fails GAConfig validation inside
		// OptimizeOrder — the formation failure this test wants.
		GA:             GAConfig{Population: 2, Elite: 3},
		Evaluator:      &Evaluator{Planner: planner, Catalog: catalog, Horizon: 100},
		RecordOutcomes: true,
		Stats:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := queriesAt([]core.Time{0, 0, 0})
	payloads := make([]any, len(queries))
	if !eng.SubmitGroup(queries, payloads) {
		t.Fatal("group refused")
	}
	clock.Run()
	if got := len(eng.Outcomes()); got != 3 {
		t.Fatalf("outcomes = %d, want 3", got)
	}
	if flat := reg.Flatten(); flat["mqo_fallback_total"] != 1 {
		t.Errorf("mqo_fallback_total = %v, want 1", flat["mqo_fallback_total"])
	}
	if len(exec.flags) != 3 {
		t.Fatalf("executed %d queries, want 3", len(exec.flags))
	}
	for id, fb := range exec.flags {
		if !fb {
			t.Errorf("query %s not flagged as MQO fallback", id)
		}
	}
	// Fallback preserves submission order.
	for i, o := range eng.Outcomes() {
		if want := queries[i].ID; o.Query.ID != want {
			t.Errorf("outcome %d: %s, want %s (submission order)", i, o.Query.ID, want)
		}
	}
}

// TestEngineFIFODispatchesInSubmissionOrder: FIFO mode ignores value — the
// baseline the live-path bench compares micro-batch MQO against.
func TestEngineFIFODispatchesInSubmissionOrder(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	clock := &ManualClock{}
	eng, err := NewEngine(EngineConfig{
		Clock:           clock,
		Executor:        PlanExecutor{Clock: clock, Rates: rates},
		Strategy:        &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100},
		Rates:           rates,
		Slots:           1,
		FIFO:            true,
		HaltOnPlanError: true,
		RecordOutcomes:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Later arrivals are more valuable; FIFO must still serve in order.
	queries := queriesAt([]core.Time{0, 1, 2})
	queries[0].BusinessValue = .3
	queries[1].BusinessValue = .6
	queries[2].BusinessValue = 1
	for _, q := range queries {
		q := q
		clock.AfterFunc(core.Duration(q.SubmitAt), func() { eng.Submit(q, nil) })
	}
	clock.Run()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	out := eng.Outcomes()
	if len(out) != 3 {
		t.Fatalf("outcomes = %d, want 3", len(out))
	}
	for i, o := range out {
		if want := queries[i].ID; o.Query.ID != want {
			t.Errorf("outcome %d: %s, want %s", i, o.Query.ID, want)
		}
	}
}
