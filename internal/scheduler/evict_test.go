package scheduler

import (
	"testing"

	"ivdss/internal/core"
)

// TestVictimEviction: with a bounded queue and a Victim policy, a full
// queue evicts the policy's pick as an expired outcome in the arrival's
// favor, a -1 verdict refuses the arrival as before, and group
// submissions stay all-or-nothing.
func TestVictimEviction(t *testing.T) {
	rates := core.DiscountRates{CL: .05, SL: .05}
	catalog, planner := testWorld(t, rates)
	clock := &ManualClock{}
	// Evict the lowest business value, but only if the arrival beats it.
	victim := func(arriving core.Query, queued []core.Query) int {
		worst, score := -1, 0.0
		for i, q := range queued {
			if worst < 0 || q.BusinessValue < score {
				worst, score = i, q.BusinessValue
			}
		}
		if worst < 0 || arriving.BusinessValue <= score {
			return -1
		}
		return worst
	}
	var dropped []core.Query
	eng, err := NewEngine(EngineConfig{
		Clock:          clock,
		Executor:       PlanExecutor{Clock: clock, Rates: rates},
		Strategy:       &IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 100},
		Rates:          rates,
		Slots:          1,
		MaxQueue:       1,
		Victim:         victim,
		RecordOutcomes: true,
		OnDrop:         func(o core.Outcome, _ any) { dropped = append(dropped, o.Query) },
	})
	if err != nil {
		t.Fatal(err)
	}

	mk := func(id string, bv float64) core.Query {
		return core.Query{ID: id, Tables: []core.TableID{"t1", "t2"}, BusinessValue: bv}
	}
	// q1 takes the only slot; q2 fills the one queue place.
	if !eng.Submit(mk("q1", 1), nil) || !eng.Submit(mk("q2", .2), nil) {
		t.Fatal("setup submissions refused")
	}
	// A richer arrival evicts q2.
	if !eng.Submit(mk("q3", .9), nil) {
		t.Fatal("arrival refused despite an eligible victim")
	}
	if len(dropped) != 1 || dropped[0].ID != "q2" {
		t.Fatalf("dropped %v, want exactly q2", dropped)
	}
	// A poorer arrival is refused: the Victim said -1.
	if eng.Submit(mk("q4", .1), nil) {
		t.Error("arrival below the queue floor admitted")
	}
	// Groups never evict.
	if eng.SubmitGroup([]core.Query{mk("q5", 5), mk("q6", 5)}, []any{nil, nil}) {
		t.Error("group submission evicted its way past a full queue")
	}
	clock.Run()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	completed := map[string]bool{}
	for _, o := range eng.Outcomes() {
		switch {
		case o.Query.ID == "q2":
			if !o.Expired {
				t.Errorf("evicted q2 recorded as %+v, want expired", o)
			}
		case o.Err == nil && !o.Expired:
			completed[o.Query.ID] = true
		}
	}
	if !completed["q1"] || !completed["q3"] {
		t.Errorf("completed %v, want q1 and the arrival q3 that displaced q2", completed)
	}
}
