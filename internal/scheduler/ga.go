package scheduler

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ivdss/internal/stats"
)

// GAConfig parameterizes the genetic algorithm over workload permutations.
// The zero value selects the defaults below; Generations defaults to the
// paper's stopping condition of 50 generations.
type GAConfig struct {
	Population   int     // chromosomes per generation (default 40)
	Generations  int     // generational loop length (default 50, as in the paper)
	MutationRate float64 // per-child probability of a swap mutation (default 0.2)
	Elite        int     // top chromosomes carried over unchanged (default Population/4)
	Seed         int64
}

func (c GAConfig) withDefaults() GAConfig {
	if c.Population == 0 {
		c.Population = 40
	}
	if c.Generations == 0 {
		c.Generations = 50
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.2
	}
	if c.Elite == 0 {
		c.Elite = c.Population / 4
	}
	return c
}

func (c GAConfig) validate() error {
	if c.Population < 2 {
		return fmt.Errorf("scheduler: GA population %d must be at least 2", c.Population)
	}
	if c.Generations < 1 {
		return fmt.Errorf("scheduler: GA generations %d must be positive", c.Generations)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("scheduler: GA mutation rate %v outside [0, 1]", c.MutationRate)
	}
	if c.Elite < 0 || c.Elite >= c.Population {
		return fmt.Errorf("scheduler: GA elite %d outside [0, population)", c.Elite)
	}
	return nil
}

// GAStats instruments one optimization run.
type GAStats struct {
	Evaluations int // distinct chromosomes evaluated (memoized)
	Generations int
}

// OptimizeOrder searches permutations of [0, n) for the one maximizing
// fitness. One chromosome of the initial population is always the identity
// permutation (the FIFO order), so the GA never returns a schedule worse
// than first-come-first-served. Fitness values are memoized per
// permutation, which matters because the evaluation function re-plans
// every query in the workload.
func OptimizeOrder(n int, fitness func(order []int) (float64, error), cfg GAConfig) ([]int, float64, GAStats, error) {
	var st GAStats
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, 0, st, err
	}
	if n <= 0 {
		return nil, 0, st, fmt.Errorf("scheduler: cannot order %d queries", n)
	}
	if n == 1 {
		v, err := fitness([]int{0})
		st.Evaluations = 1
		return []int{0}, v, st, err
	}

	src := stats.NewSource(cfg.Seed)
	memo := make(map[string]float64)
	evaluate := func(order []int) (float64, error) {
		key := permKey(order)
		if v, ok := memo[key]; ok {
			return v, nil
		}
		v, err := fitness(order)
		if err != nil {
			return 0, err
		}
		memo[key] = v
		st.Evaluations++
		return v, nil
	}

	type chromo struct {
		order []int
		fit   float64
	}
	pop := make([]chromo, 0, cfg.Population)
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	fit, err := evaluate(identity)
	if err != nil {
		return nil, 0, st, err
	}
	pop = append(pop, chromo{identity, fit})
	for len(pop) < cfg.Population {
		order := src.Perm(n)
		fit, err := evaluate(order)
		if err != nil {
			return nil, 0, st, err
		}
		pop = append(pop, chromo{order, fit})
	}

	rank := func() {
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].fit > pop[j].fit })
	}
	rank()

	for gen := 0; gen < cfg.Generations; gen++ {
		st.Generations++
		// The best chromosomes are the parents (rank selection).
		parents := pop[:cfg.Population/2]
		next := make([]chromo, 0, cfg.Population)
		next = append(next, pop[:cfg.Elite]...)
		for len(next) < cfg.Population {
			a := parents[src.Intn(len(parents))]
			b := parents[src.Intn(len(parents))]
			child := orderCrossover(a.order, b.order, src)
			if src.Float64() < cfg.MutationRate {
				swapMutate(child, src)
			}
			fit, err := evaluate(child)
			if err != nil {
				return nil, 0, st, err
			}
			next = append(next, chromo{child, fit})
		}
		pop = next
		rank()
	}
	best := pop[0]
	return append([]int{}, best.order...), best.fit, st, nil
}

// orderCrossover implements the paper's recombination: "a randomly chosen
// contiguous subsection of the first parent is copied to the child, and
// then all remaining items in the second parent (that have not already
// been taken from the first parent's subsection) are then copied to the
// child in order of appearance."
func orderCrossover(a, b []int, src *stats.Source) []int {
	n := len(a)
	lo := src.Intn(n)
	hi := lo + src.Intn(n-lo) + 1 // [lo, hi) non-empty
	child := make([]int, 0, n)
	taken := make([]bool, n)
	for _, g := range a[lo:hi] {
		taken[g] = true
	}
	// Items from b fill positions before and after the copied subsection,
	// preserving the subsection's position in the child.
	var fromB []int
	for _, g := range b {
		if !taken[g] {
			fromB = append(fromB, g)
		}
	}
	child = append(child, fromB[:lo]...)
	child = append(child, a[lo:hi]...)
	child = append(child, fromB[lo:]...)
	return child
}

// swapMutate exchanges two random genes in place.
func swapMutate(order []int, src *stats.Source) {
	if len(order) < 2 {
		return
	}
	i := src.Intn(len(order))
	j := src.Intn(len(order) - 1)
	if j >= i {
		j++
	}
	order[i], order[j] = order[j], order[i]
}

func permKey(order []int) string {
	var b strings.Builder
	for i, g := range order {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(g))
	}
	return b.String()
}
