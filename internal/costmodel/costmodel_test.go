package costmodel

import (
	"bytes"
	"strings"
	"testing"

	"ivdss/internal/core"
)

func access(kinds ...core.AccessKind) []core.TableAccess {
	out := make([]core.TableAccess, len(kinds))
	for i, k := range kinds {
		out[i] = core.TableAccess{
			Table: core.TableID(rune('a' + i)),
			Site:  core.SiteID(i + 1),
			Kind:  k,
		}
	}
	return out
}

func TestFigure4Model(t *testing.T) {
	m := Figure4Model()
	q := core.Query{ID: "q"}
	tests := []struct {
		name  string
		acc   []core.TableAccess
		total core.Duration
	}{
		{"all replicas", access(core.AccessReplica, core.AccessReplica, core.AccessReplica, core.AccessReplica), 2},
		{"one base", access(core.AccessBase, core.AccessReplica, core.AccessReplica, core.AccessReplica), 4},
		{"two bases", access(core.AccessBase, core.AccessBase, core.AccessReplica, core.AccessReplica), 6},
		{"three bases", access(core.AccessBase, core.AccessBase, core.AccessBase, core.AccessReplica), 8},
		{"four bases", access(core.AccessBase, core.AccessBase, core.AccessBase, core.AccessBase), 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Estimate(q, tt.acc, 0).Total(); got != tt.total {
				t.Errorf("total = %v, want %v", got, tt.total)
			}
		})
	}
}

func TestCountModelSiteOverhead(t *testing.T) {
	m := &CountModel{LocalProcess: 1, PerBaseTable: 2, PerExtraSite: 5}
	q := core.Query{ID: "q"}
	// Two base tables on two distinct sites: 1 + 2*2 + 5*(2-1) = 10.
	acc := access(core.AccessBase, core.AccessBase)
	if got := m.Estimate(q, acc, 0).Process; got != 10 {
		t.Errorf("process = %v, want 10", got)
	}
	// Same two base tables collapsed onto one site: no extra-site charge.
	acc[1].Site = acc[0].Site
	if got := m.Estimate(q, acc, 0).Process; got != 5 {
		t.Errorf("process = %v, want 5", got)
	}
}

func TestCountModelTransmission(t *testing.T) {
	m := &CountModel{LocalProcess: 1, PerBaseTable: 1, TransmitFlat: 3, TransmitPerBase: 2}
	q := core.Query{ID: "q"}
	if got := m.Estimate(q, access(core.AccessReplica), 0).Transmit; got != 0 {
		t.Errorf("local plan transmit = %v, want 0", got)
	}
	if got := m.Estimate(q, access(core.AccessBase, core.AccessBase), 0).Transmit; got != 7 {
		t.Errorf("remote plan transmit = %v, want 3+2*2", got)
	}
}

func TestCountModelQueryWeights(t *testing.T) {
	m := &CountModel{LocalProcess: 2, PerBaseTable: 2, QueryWeights: map[string]float64{"heavy": 3}}
	heavy := core.Query{ID: "heavy"}
	light := core.Query{ID: "light"}
	acc := access(core.AccessBase)
	if got := m.Estimate(heavy, acc, 0).Process; got != 12 {
		t.Errorf("heavy process = %v, want 12", got)
	}
	if got := m.Estimate(light, acc, 0).Process; got != 4 {
		t.Errorf("light process = %v, want 4", got)
	}
}

func TestCountModelQueueEstimator(t *testing.T) {
	m := &CountModel{LocalProcess: 1, Queue: func(_ core.Query, _ []core.TableAccess, start core.Time) core.Duration {
		return start / 2
	}}
	if got := m.Estimate(core.Query{ID: "q"}, access(core.AccessReplica), 10).Queue; got != 5 {
		t.Errorf("queue = %v, want 5", got)
	}
}

func TestWeightedModel(t *testing.T) {
	m := &WeightedModel{
		LocalProcess:  1,
		TableWeights:  map[core.TableID]core.Duration{"a": 10},
		DefaultWeight: 3,
		TransmitFlat:  2,
	}
	q := core.Query{ID: "q"}
	acc := access(core.AccessBase, core.AccessBase) // tables "a" and "b"
	est := m.Estimate(q, acc, 0)
	if est.Process != 14 { // 1 + 10 + 3
		t.Errorf("process = %v, want 14", est.Process)
	}
	if est.Transmit != 2 {
		t.Errorf("transmit = %v, want 2", est.Transmit)
	}
	local := m.Estimate(q, access(core.AccessReplica, core.AccessReplica), 0)
	if local.Process != 1 || local.Transmit != 0 {
		t.Errorf("all-replica estimate = %+v", local)
	}
}

func TestWeightedModelSiteOverhead(t *testing.T) {
	m := &WeightedModel{LocalProcess: 1, DefaultWeight: 1, PerExtraSite: 4}
	est := m.Estimate(core.Query{ID: "q"}, access(core.AccessBase, core.AccessBase, core.AccessBase), 0)
	if est.Process != 1+3+4*2 {
		t.Errorf("process = %v, want 12", est.Process)
	}
}

func TestCalibratedModel(t *testing.T) {
	fallback := &CountModel{LocalProcess: 1, PerBaseTable: 1}
	m, err := NewCalibratedModel(fallback)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{ID: "q7"}
	acc := access(core.AccessBase, core.AccessReplica)

	// Before calibration: fallback.
	if got := m.Estimate(q, acc, 0).Process; got != 2 {
		t.Errorf("fallback process = %v, want 2", got)
	}

	m.Record("q7", []core.TableID{"a"}, core.CostEstimate{Process: 9, Transmit: 1})
	est := m.Estimate(q, acc, 0)
	if est.Process != 9 || est.Transmit != 1 {
		t.Errorf("calibrated estimate = %+v, want recorded value", est)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}

	// A different base-table subset of the same query still falls back.
	other := access(core.AccessReplica, core.AccessBase) // base table is "b"
	if got := m.Estimate(q, other, 0).Process; got != 2 {
		t.Errorf("uncalibrated subset process = %v, want fallback 2", got)
	}
}

func TestCalibratedModelKeyOrderInsensitive(t *testing.T) {
	if ConfigKey("q", []core.TableID{"b", "a"}) != ConfigKey("q", []core.TableID{"a", "b"}) {
		t.Error("ConfigKey depends on table order")
	}
}

func TestNewCalibratedModelRequiresFallback(t *testing.T) {
	if _, err := NewCalibratedModel(nil); err == nil {
		t.Error("nil fallback accepted")
	}
}

func TestCalibratedModelConcurrentAccess(t *testing.T) {
	m, err := NewCalibratedModel(&CountModel{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			m.Record("q", []core.TableID{"a"}, core.CostEstimate{Process: core.Duration(i)})
		}
	}()
	q := core.Query{ID: "q"}
	acc := access(core.AccessBase)
	for i := 0; i < 1000; i++ {
		m.Estimate(q, acc, 0)
	}
	<-done
}

func TestCalibrationJSONRoundTrip(t *testing.T) {
	m, err := NewCalibratedModel(&CountModel{LocalProcess: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Record("q1", []core.TableID{"a", "b"}, core.CostEstimate{Process: 3.5, Transmit: 1})
	m.Record("q2", nil, core.CostEstimate{Process: .5})

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCalibratedModel(&CountModel{LocalProcess: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.ReadJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 2 {
		t.Fatalf("entries = %d", fresh.Len())
	}
	got, ok := fresh.Lookup("q1", []core.TableID{"b", "a"}) // order-insensitive
	if !ok || got.Process != 3.5 || got.Transmit != 1 {
		t.Errorf("lookup = %+v, %v", got, ok)
	}
}

func TestCalibrationReadJSONRejectsBadInput(t *testing.T) {
	m, _ := NewCalibratedModel(&CountModel{})
	if err := m.ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := m.ReadJSON(strings.NewReader(`{"entries":{"k":{"Process":-1}}}`)); err == nil {
		t.Error("negative cost accepted")
	}
}
