package costmodel

import "ivdss/internal/core"

// Process-scale constants recalibrated against the two sqlmini execution
// engines (ivqp-bench -fig exec). The model constants used throughout the
// scenario matrix were originally fitted to the tree-walk interpreter;
// the bytecode VM finishes the same local processing in a fraction of the
// time, and that fraction feeds straight into every consumer of
// computation latency — the IVQP planner's delay search, MQO workload
// ordering, and admission shedding — since IV decays as (1-λCL)^CL.
const (
	// TreeWalkProcessScale anchors the calibration: the published model
	// constants describe the tree-walk engine.
	TreeWalkProcessScale = 1.0
	// VMProcessScale is the measured processing-time ratio VM/tree-walk
	// across the exec benchmark shapes (ivqp-bench -fig exec at scale 8:
	// scan 10.5×, filter 11.1×, hash-join 2.3×, group-by 8.3× faster once
	// plans are prepared). The hash join — build-side hashing dominates
	// and both engines share relation's columnar join kernel — is the
	// slowest shape at ~0.43×; 0.45 is the conservative calibration so
	// the planner never promises latency the worst shape cannot meet.
	VMProcessScale = 0.45
)

// Scaled returns a copy of the model with its processing-side constants
// multiplied by scale. Transmission constants are untouched — a faster
// local executor does not move bytes across the network any faster — and
// the queue estimator and per-query weights carry over unchanged.
func (m *CountModel) Scaled(scale float64) *CountModel {
	out := *m
	out.LocalProcess = core.Duration(float64(m.LocalProcess) * scale)
	out.PerBaseTable = core.Duration(float64(m.PerBaseTable) * scale)
	out.PerExtraSite = core.Duration(float64(m.PerExtraSite) * scale)
	return &out
}
