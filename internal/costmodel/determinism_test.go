package costmodel

import (
	"strings"
	"testing"
)

// ReadJSON validates calibration entries in sorted key order, so a
// snapshot with several bad entries always reports the lexically
// smallest — not whichever the decoded map happened to yield first.
func TestReadJSONDeterministicOffender(t *testing.T) {
	const snapshot = `{"entries":{
		"q9|zeta":  {"Queue":-1},
		"q1|alpha": {"Process":-2},
		"q5|mid":   {"Transmit":-3}
	}}`
	const want = `costmodel: calibration entry "q1|alpha" has negative components`
	for i := 0; i < 32; i++ {
		m, err := NewCalibratedModel(&CountModel{LocalProcess: 1})
		if err != nil {
			t.Fatal(err)
		}
		err = m.ReadJSON(strings.NewReader(snapshot))
		if err == nil || err.Error() != want {
			t.Fatalf("run %d: ReadJSON error = %v; want %q", i, err, want)
		}
	}
}
