// Package costmodel provides implementations of core.CostModel — the
// computational-latency estimators the IVQP planner consumes.
//
// Three estimators cover the paper's needs:
//
//   - CountModel: processing cost depends on how many base tables execute
//     remotely, matching the worked example in Figure 4 of the paper
//     (2 time units for an all-replica plan, +2 per remote base table),
//     plus a per-site coordination overhead that reproduces the fan-out
//     effect of Figure 8.
//   - WeightedModel: per-table remote costs, for workloads where tables
//     differ in size. Under this model the planner's prefix pruning is a
//     heuristic rather than exact, which the search ablation exercises.
//   - CalibratedModel: a lookup table of measured costs keyed by query and
//     base-table subset, following the paper's observation that a query
//     only needs to be compiled once per table-version configuration and
//     that this can be done in advance.
package costmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"ivdss/internal/core"
)

// QueueEstimator predicts the queuing delay a plan will incur if released
// at start. Implementations typically inspect current resource load; the
// zero default assumes idle servers.
type QueueEstimator func(q core.Query, access []core.TableAccess, start core.Time) core.Duration

// CountModel estimates cost from the number of remote base tables and the
// number of distinct remote sites involved.
type CountModel struct {
	// LocalProcess is the processing time of an all-replica plan, before
	// the per-query weight is applied.
	LocalProcess core.Duration
	// PerBaseTable is the processing time added per remote base table.
	PerBaseTable core.Duration
	// PerExtraSite is the coordination overhead added for each distinct
	// remote site beyond the first. This is what makes wide fan-out
	// expensive in the uniform-placement experiment (Figure 8b).
	PerExtraSite core.Duration
	// TransmitFlat is the result-transmission time paid once if any remote
	// site participates, and TransmitPerBase adds per remote base table.
	// The paper measures transmission "only for the queries running at
	// remote servers".
	TransmitFlat    core.Duration
	TransmitPerBase core.Duration
	// ViewProcess is the processing time of a plan answered entirely from a
	// materialized view: the answer is pre-joined and pre-aggregated, so
	// serving it skips local evaluation. It replaces LocalProcess for
	// all-view plans. The zero default prices a view read as a free lookup.
	ViewProcess core.Duration
	// QueryWeights optionally scales processing per query ID (default 1),
	// so a workload can mix cheap and expensive queries.
	QueryWeights map[string]float64
	// Queue optionally estimates queuing delay (default: zero).
	Queue QueueEstimator
}

var _ core.CostModel = (*CountModel)(nil)

// Figure4Model returns the exact cost shape of the paper's Figure 4 worked
// example: computation time 2 with replicas only, and 4, 6, 8, 10 when 1-4
// base tables participate.
func Figure4Model() *CountModel {
	return &CountModel{LocalProcess: 2, PerBaseTable: 2}
}

// Estimate implements core.CostModel.
func (m *CountModel) Estimate(q core.Query, access []core.TableAccess, start core.Time) core.CostEstimate {
	fp := sourceFootprint(access)
	bases, sites := fp.Bases, fp.Sites
	w := 1.0
	if m.QueryWeights != nil {
		if qw, ok := m.QueryWeights[q.ID]; ok {
			w = qw
		}
	}
	local := m.LocalProcess
	if fp.AllViews() {
		local = m.ViewProcess
	}
	est := core.CostEstimate{
		Process: w * (local + m.PerBaseTable*core.Duration(bases) + m.PerExtraSite*core.Duration(max(0, sites-1))),
	}
	if bases > 0 {
		est.Transmit = m.TransmitFlat + m.TransmitPerBase*core.Duration(bases)
	}
	if m.Queue != nil {
		est.Queue = m.Queue(q, access, start)
	}
	return est
}

// WeightedModel estimates cost from per-table remote weights, so that
// reading a big base table remotely costs more than a small one.
type WeightedModel struct {
	// LocalProcess is the processing time of an all-replica plan.
	LocalProcess core.Duration
	// TableWeights maps each base table to the processing time added when
	// it is read remotely; DefaultWeight covers unlisted tables.
	TableWeights  map[core.TableID]core.Duration
	DefaultWeight core.Duration
	// PerExtraSite, TransmitFlat, ViewProcess and Queue behave as in
	// CountModel.
	PerExtraSite core.Duration
	TransmitFlat core.Duration
	ViewProcess  core.Duration
	Queue        QueueEstimator
}

var _ core.CostModel = (*WeightedModel)(nil)

// Estimate implements core.CostModel.
func (m *WeightedModel) Estimate(q core.Query, access []core.TableAccess, start core.Time) core.CostEstimate {
	fp := sourceFootprint(access)
	bases, sites := fp.Bases, fp.Sites
	process := m.LocalProcess
	if fp.AllViews() {
		process = m.ViewProcess
	}
	for _, a := range access {
		switch a.Kind {
		case core.AccessBase:
			if w, ok := m.TableWeights[a.Table]; ok {
				process += w
			} else {
				process += m.DefaultWeight
			}
		case core.AccessReplica, core.AccessView:
			// Served locally: no remote weight.
		}
	}
	process += m.PerExtraSite * core.Duration(max(0, sites-1))
	est := core.CostEstimate{Process: process}
	if bases > 0 {
		est.Transmit = m.TransmitFlat
	}
	if m.Queue != nil {
		est.Queue = m.Queue(q, access, start)
	}
	return est
}

// CalibratedModel serves measured costs recorded per (query, base-table
// subset) configuration, falling back to another model for configurations
// not yet calibrated. It is safe for concurrent use.
type CalibratedModel struct {
	mu       sync.RWMutex
	entries  map[string]core.CostEstimate
	fallback core.CostModel
}

var _ core.CostModel = (*CalibratedModel)(nil)

// NewCalibratedModel returns an empty calibration cache backed by fallback,
// which must be non-nil.
func NewCalibratedModel(fallback core.CostModel) (*CalibratedModel, error) {
	if fallback == nil {
		return nil, fmt.Errorf("costmodel: calibrated model needs a fallback")
	}
	return &CalibratedModel{
		entries:  make(map[string]core.CostEstimate),
		fallback: fallback,
	}, nil
}

// ConfigKey canonically names a (query, remote base tables) configuration.
func ConfigKey(queryID string, baseTables []core.TableID) string {
	names := make([]string, len(baseTables))
	for i, t := range baseTables {
		names[i] = string(t)
	}
	sort.Strings(names)
	return queryID + "|" + strings.Join(names, ",")
}

// Record stores a measured cost for a configuration, overwriting any
// previous measurement.
func (m *CalibratedModel) Record(queryID string, baseTables []core.TableID, est core.CostEstimate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[ConfigKey(queryID, baseTables)] = est
}

// Lookup returns the recorded cost for a configuration, if any.
func (m *CalibratedModel) Lookup(queryID string, baseTables []core.TableID) (core.CostEstimate, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	est, ok := m.entries[ConfigKey(queryID, baseTables)]
	return est, ok
}

// Len returns the number of calibrated configurations.
func (m *CalibratedModel) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Estimate implements core.CostModel: calibration hit first, else fallback.
func (m *CalibratedModel) Estimate(q core.Query, access []core.TableAccess, start core.Time) core.CostEstimate {
	m.mu.RLock()
	est, ok := m.entries[ConfigKeyForAccess(q.ID, access)]
	m.mu.RUnlock()
	if ok {
		return est
	}
	return m.fallback.Estimate(q, access, start)
}

// ConfigKeyForAccess canonically names the data-source configuration of an
// access set: remote base tables by name plus materialized views under
// their namespaced unit ("view:<id>"). Replica reads don't enter the key —
// a replica answers like its base table, only staler. For plans without
// views the key equals ConfigKey over the plan's base tables, so existing
// calibration snapshots keep matching.
func ConfigKeyForAccess(queryID string, access []core.TableAccess) string {
	var names []string
	for _, a := range access {
		switch a.Kind {
		case core.AccessBase:
			names = append(names, string(a.Table))
		case core.AccessView:
			names = append(names, string(core.ViewUnit(a.View)))
		case core.AccessReplica:
			// Local replica read: same plan shape as all-replica.
		}
	}
	sort.Strings(names)
	return queryID + "|" + strings.Join(names, ",")
}

// RecordAccess stores a measured cost under the access set's configuration
// key, the write-side twin of the Estimate lookup.
func (m *CalibratedModel) RecordAccess(queryID string, access []core.TableAccess, est core.CostEstimate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[ConfigKeyForAccess(queryID, access)] = est
}

// Footprint summarizes the data sources of one access set.
type Footprint struct {
	Bases int // remote base-table reads
	Sites int // distinct remote sites
	Local int // local replica reads
	Views int // materialized-view reads
}

// AllViews reports whether every access is served from a materialized
// view (and there is at least one).
func (f Footprint) AllViews() bool {
	return f.Views > 0 && f.Bases == 0 && f.Local == 0
}

// sourceFootprint counts each access by its data-source kind.
func sourceFootprint(access []core.TableAccess) Footprint {
	var fp Footprint
	seen := make(map[core.SiteID]bool)
	for _, a := range access {
		switch a.Kind {
		case core.AccessBase:
			fp.Bases++
			if !seen[a.Site] {
				seen[a.Site] = true
				fp.Sites++
			}
		case core.AccessReplica:
			fp.Local++
		case core.AccessView:
			fp.Views++
		}
	}
	return fp
}

// calibrationFile is the JSON shape calibration snapshots serialize to.
type calibrationFile struct {
	Entries map[string]core.CostEstimate `json:"entries"`
}

// WriteJSON snapshots the calibration cache so a restarted server keeps
// its learned costs.
func (m *CalibratedModel) WriteJSON(w io.Writer) error {
	m.mu.RLock()
	snapshot := make(map[string]core.CostEstimate, len(m.entries))
	for k, v := range m.entries {
		snapshot[k] = v
	}
	m.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(calibrationFile{Entries: snapshot}); err != nil {
		return fmt.Errorf("costmodel: write calibration: %w", err)
	}
	return nil
}

// ReadJSON merges a calibration snapshot into the cache (existing entries
// with the same key are overwritten).
func (m *CalibratedModel) ReadJSON(r io.Reader) error {
	var file calibrationFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return fmt.Errorf("costmodel: read calibration: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Validate in sorted order so the reported offender is deterministic.
	keys := make([]string, 0, len(file.Entries))
	for k := range file.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := file.Entries[k]
		if v.Queue < 0 || v.Process < 0 || v.Transmit < 0 {
			return fmt.Errorf("costmodel: calibration entry %q has negative components", k)
		}
		m.entries[k] = v
	}
	return nil
}
