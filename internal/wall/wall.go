// Package wall is the single sanctioned gateway to the process wall
// clock. Deterministic packages (the scheduling engine, the replication
// engine, the planner) never read time at all — they take a
// scheduler.Clock and run identically under the DES, a hand-stepped test
// clock, or the live server. Code that is *inherently* wall-bound — socket
// deadlines, retry backoffs raced against context deadlines, connection
// idle stamps — must route through this package instead of calling the
// time package directly, so every wall-time dependence in the tree is
// explicit, grep-able, and guarded by the clockcheck analyzer: a raw
// time.Now anywhere else fails `go vet -vettool=ivdss-lint`.
package wall

import "time"

// Now returns the current wall-clock instant.
func Now() time.Time { return time.Now() }

// Since returns the wall time elapsed since t.
func Since(t time.Time) time.Duration { return time.Since(t) }

// Until returns the wall time remaining until t.
func Until(t time.Time) time.Duration { return time.Until(t) }

// Sleep pauses the calling goroutine for d.
func Sleep(d time.Duration) { time.Sleep(d) }

// NewTimer returns a timer that fires after d.
func NewTimer(d time.Duration) *time.Timer { return time.NewTimer(d) }

// After waits for d to elapse and then sends the instant on the returned
// channel. Prefer NewTimer in loops so the timer can be stopped.
func After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc arranges for fn to run in its own goroutine after d.
func AfterFunc(d time.Duration, fn func()) *time.Timer { return time.AfterFunc(d, fn) }
