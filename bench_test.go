// Benchmarks that regenerate the paper's evaluation (one per figure) plus
// micro-benchmarks of the core machinery. Run them all with
//
//	go test -bench=. -benchmem
//
// Figure benches execute the full experiment once per iteration and report
// headline metrics (mean IV, gains) through b.ReportMetric, so a bench run
// doubles as a compact reproduction report. cmd/ivqp-bench prints the same
// experiments as full tables.
package ivdss_test

import (
	"strings"
	"testing"

	"ivdss"
	"ivdss/internal/bench"
	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/scheduler"
	"ivdss/internal/tpch"
)

// BenchmarkFig5 regenerates Figure 5: mean information value of IVQP vs
// Federation vs Data Warehouse across Fq:Fs ratios and λ settings.
func BenchmarkFig5(b *testing.B) {
	cfg := bench.DefaultFig5Config()
	var res bench.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	report := func(name string, ratio, lambda string, m bench.Method) {
		if v, ok := res.Get(ratio, lambda, m); ok {
			b.ReportMetric(v, name)
		}
	}
	report("ivqp@1:20", "1:20", "λsl=λcl=.01", bench.MethodIVQP)
	report("fed@1:20", "1:20", "λsl=λcl=.01", bench.MethodFederation)
	report("dw@1:20", "1:20", "λsl=λcl=.01", bench.MethodWarehouse)
}

// BenchmarkFig6 regenerates Figure 6: per-query computational latency.
func BenchmarkFig6(b *testing.B) {
	cfg := bench.DefaultFig6Config()
	var res bench.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ivqp, fed, dw float64
	for _, p := range res.Points {
		ivqp += p.Values[bench.MethodIVQP]
		fed += p.Values[bench.MethodFederation]
		dw += p.Values[bench.MethodWarehouse]
	}
	n := float64(len(res.Points))
	b.ReportMetric(ivqp/n, "meanCL-ivqp")
	b.ReportMetric(fed/n, "meanCL-fed")
	b.ReportMetric(dw/n, "meanCL-dw")
}

// BenchmarkFig7 regenerates Figure 7: per-query synchronization latency.
func BenchmarkFig7(b *testing.B) {
	cfg := bench.DefaultFig7Config()
	var res bench.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, panel := range res.Panels {
		var ivqp, dw float64
		for _, p := range panel.Points {
			ivqp += p.Values[bench.MethodIVQP]
			dw += p.Values[bench.MethodWarehouse]
		}
		n := float64(len(panel.Points))
		b.ReportMetric(ivqp/n, "meanSL-ivqp@"+panel.Ratio)
		b.ReportMetric(dw/n, "meanSL-dw@"+panel.Ratio)
	}
}

// BenchmarkFig8 regenerates Figure 8: information value vs site count
// under skewed and uniform placements.
func BenchmarkFig8(b *testing.B) {
	cfg := bench.DefaultFig8Config()
	var res bench.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunFig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if v, ok := res.Get("uniform", 2, bench.MethodIVQP); ok {
		b.ReportMetric(v, "ivqp-uniform@2")
	}
	if v, ok := res.Get("uniform", 22, bench.MethodIVQP); ok {
		b.ReportMetric(v, "ivqp-uniform@22")
	}
	if v, ok := res.Get("skewed", 22, bench.MethodIVQP); ok {
		b.ReportMetric(v, "ivqp-skewed@22")
	}
}

// BenchmarkFig9a regenerates Figure 9(a): MQO vs FIFO by overlap rate.
func BenchmarkFig9a(b *testing.B) {
	cfg := bench.DefaultFig9Config()
	var res bench.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunFig9a(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Overlap) > 0 {
		first, last := res.Overlap[0], res.Overlap[len(res.Overlap)-1]
		b.ReportMetric((first.MQO-first.Without)/first.Without*100, "gain%@10")
		b.ReportMetric((last.MQO-last.Without)/last.Without*100, "gain%@50")
	}
}

// BenchmarkFig9b regenerates Figure 9(b): MQO vs FIFO by workload size.
func BenchmarkFig9b(b *testing.B) {
	cfg := bench.DefaultFig9Config()
	var res bench.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunFig9b(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Counts) > 0 {
		last := res.Counts[len(res.Counts)-1]
		b.ReportMetric((last.MQO-last.Without)/last.Without*100, "gain%@14q")
	}
}

// BenchmarkAblationSearch compares the three plan-search modes.
func BenchmarkAblationSearch(b *testing.B) {
	cfg := bench.DefaultAblationSearchConfig()
	var res bench.AblationSearchResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunAblationSearch(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.MeanPlans, "plans/"+row.Mode.String())
	}
}

// BenchmarkAblationMQO compares workload-ordering strategies.
func BenchmarkAblationMQO(b *testing.B) {
	cfg := bench.DefaultAblationMQOConfig()
	var res bench.AblationMQOResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunAblationMQO(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.TotalValue, "iv/"+strings.ReplaceAll(row.Strategy, " ", "-"))
	}
}

// BenchmarkAblationAging measures the starvation effect of Section 3.3.
func BenchmarkAblationAging(b *testing.B) {
	cfg := bench.DefaultAblationAgingConfig()
	var res bench.AblationAgingResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunAblationAging(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.MaxWait, "maxWait/"+strings.ReplaceAll(row.Policy, " ", "-"))
	}
}

// --- Micro-benchmarks of the core machinery ---

func benchWorld(b *testing.B) (*bench.Deployment, core.CostModel) {
	b.Helper()
	var tables []ivdss.TableID
	for _, name := range tpch.PartitionedTableNames(5) {
		tables = append(tables, ivdss.TableID(name))
	}
	dep, err := bench.BuildDeployment(bench.DeployConfig{
		Tables: tables, Sites: 4, ReplicaCount: 5,
		SyncMean: 15, ScheduleHorizon: 1e5, InitialSync: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return dep, &costmodel.CountModel{LocalProcess: 2, PerBaseTable: 3, TransmitFlat: 2}
}

// BenchmarkPlannerScatterGather measures one bounded plan search over a
// 10-table query (5 replicated).
func BenchmarkPlannerScatterGather(b *testing.B) {
	dep, cost := benchWorld(b)
	planner, err := core.NewPlanner(cost, core.PlannerConfig{
		Rates: core.DiscountRates{CL: .01, SL: .05}, Horizon: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	q := ivdss.Query{ID: "q", Tables: dep.Tables[:10], BusinessValue: 1, SubmitAt: 500}
	snap, err := dep.Catalog.Snapshot(q.Tables, q.SubmitAt, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := planner.Best(q, snap, q.SubmitAt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerExhaustive is the unbounded reference search on the same
// scenario, for comparison with BenchmarkPlannerScatterGather.
func BenchmarkPlannerExhaustive(b *testing.B) {
	dep, cost := benchWorld(b)
	planner, err := core.NewPlanner(cost, core.PlannerConfig{
		Rates: core.DiscountRates{CL: .01, SL: .05}, Horizon: 30, Mode: core.Exhaustive,
	})
	if err != nil {
		b.Fatal(err)
	}
	q := ivdss.Query{ID: "q", Tables: dep.Tables[:10], BusinessValue: 1, SubmitAt: 500}
	snap, err := dep.Catalog.Snapshot(q.Tables, q.SubmitAt, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := planner.Best(q, snap, q.SubmitAt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGASchedule measures the genetic algorithm over an 8-query
// workload with memoized fitness.
func BenchmarkGASchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, _, err := scheduler.OptimizeOrder(8, func(order []int) (float64, error) {
			score := 0.0
			for pos, g := range order {
				score += float64(g*pos) * .01
			}
			return score, nil
		}, scheduler.GAConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTPCHQ1 measures end-to-end SQL execution of the heaviest
// single-table query over the generated data set.
func BenchmarkTPCHQ1(b *testing.B) {
	catalog, err := tpch.Generate(tpch.Config{Scale: 1, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	q, err := tpch.QueryByID("Q1")
	if err != nil {
		b.Fatal(err)
	}
	cat := make(map[string]*ivdss.RelTable, len(catalog))
	for k, v := range catalog {
		cat[k] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ivdss.RunSQL(q.SQL, mapCatalog(cat)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTPCHQ5 measures a six-way join query.
func BenchmarkTPCHQ5(b *testing.B) {
	catalog, err := tpch.Generate(tpch.Config{Scale: 1, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	q, err := tpch.QueryByID("Q5")
	if err != nil {
		b.Fatal(err)
	}
	cat := make(map[string]*ivdss.RelTable, len(catalog))
	for k, v := range catalog {
		cat[k] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ivdss.RunSQL(q.SQL, mapCatalog(cat)); err != nil {
			b.Fatal(err)
		}
	}
}

// mapCatalog adapts a plain map to the SQL catalog interface.
type mapCatalog map[string]*ivdss.RelTable

func (m mapCatalog) Table(name string) (*ivdss.RelTable, error) {
	if t, ok := m[name]; ok {
		return t, nil
	}
	return nil, errUnknownTable(name)
}

type errUnknownTable string

func (e errUnknownTable) Error() string { return "unknown table " + string(e) }

// BenchmarkDispatcherStream pushes a 200-query stream through the
// simulated dispatcher with IVQP planning.
func BenchmarkDispatcherStream(b *testing.B) {
	dep, cost := benchWorld(b)
	rates := core.DiscountRates{CL: .01, SL: .05}
	strategy, err := dep.Strategy(bench.MethodIVQP, cost, rates, 30)
	if err != nil {
		b.Fatal(err)
	}
	var queries []ivdss.Query
	for i := 0; i < 200; i++ {
		queries = append(queries, ivdss.Query{
			ID:            "q" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Tables:        dep.Tables[i%8 : i%8+4],
			BusinessValue: 1,
			SubmitAt:      float64(i) * 3,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunStream(dep, strategy, queries, rates, 1, core.Aging{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInformationValue measures the hot IV formula.
func BenchmarkInformationValue(b *testing.B) {
	rates := ivdss.DiscountRates{CL: .01, SL: .05}
	lat := ivdss.Latencies{CL: 12.5, SL: 30.25}
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += ivdss.InformationValue(1, lat, rates)
	}
	_ = sink
}

// BenchmarkAblationAdvisor compares the placement advisor's replication
// plan with random plans under independent simulation.
func BenchmarkAblationAdvisor(b *testing.B) {
	cfg := bench.DefaultAdvisorConfig()
	var res bench.AdvisorResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunAdvisor(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.MeanIV, "iv/"+strings.ReplaceAll(row.Plan, " ", "-"))
	}
}

// BenchmarkRouterRoute measures the precomputed-routing fast path of
// Section 3.1 (compare with BenchmarkPlannerScatterGather, the full
// search it replaces for registered queries).
func BenchmarkRouterRoute(b *testing.B) {
	cfg := ivdss.RouterConfig{
		Cost:  &ivdss.CountModel{LocalProcess: 2, PerBaseTable: 3, TransmitFlat: 1},
		Rates: ivdss.DiscountRates{CL: .03, SL: .05},
	}
	r, err := ivdss.NewRouter(cfg)
	if err != nil {
		b.Fatal(err)
	}
	q := ivdss.Query{ID: "q", Tables: []ivdss.TableID{"a", "b", "c", "d"}, BusinessValue: 1}
	sites := []ivdss.SiteID{1, 2, 1, 2}
	replicated := []bool{true, true, true, false}
	const window = 20.0
	if err := r.Register(q, sites, replicated, window); err != nil {
		b.Fatal(err)
	}
	now := ivdss.Time(100)
	snap := make([]ivdss.TableState, 4)
	for i, id := range q.Tables {
		snap[i] = ivdss.TableState{ID: id, Site: sites[i]}
		if replicated[i] {
			snap[i].Replica = &ivdss.ReplicaState{
				LastSync:  now - 7,
				NextSyncs: []ivdss.Time{now + 13, now + 33},
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Route("q", snap, now); !ok {
			b.Fatal("route refused")
		}
	}
}
