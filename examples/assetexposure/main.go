// Asset exposure: the embedded federation engine with real query
// execution and measured-cost calibration.
//
// A bank computes per-desk asset exposure from positions (trading system,
// site 1), market prices (market-data system, site 2) and desk limits
// (risk system, site 2). Prices are replicated to the DSS on a fast cycle.
// The example distributes live relation data across in-process sites,
// calibrates the cost model by actually executing every base/replica
// configuration (the paper's "compile the query once per configuration,
// in advance"), then lets the planner pick plans at three moments of
// replica staleness and runs each chosen plan for real.
//
//	go run ./examples/assetexposure
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"ivdss"
	"ivdss/internal/relation"
)

const exposureSQL = `
	SELECT pos.po_desk, sum(pos.po_qty * pr.pr_price) AS exposure, max(lim.li_max) AS cap
	FROM positions pos, prices pr, limits lim
	WHERE pos.po_symbol = pr.pr_symbol AND pos.po_desk = lim.li_desk
	GROUP BY pos.po_desk
	ORDER BY exposure DESC`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Placement: positions at the trading site, prices and limits at the
	// market/risk site; prices replicated every 5 minutes.
	placement, err := ivdss.NewPlacement(map[ivdss.TableID]ivdss.SiteID{
		"positions": 1, "prices": 2, "limits": 2,
	})
	if err != nil {
		return err
	}
	mgr := ivdss.NewReplicationManager()
	sched, err := ivdss.PeriodicSchedule(5, 0, 1000)
	if err != nil {
		return err
	}
	if err := mgr.Register("prices", sched); err != nil {
		return err
	}
	catalog, err := ivdss.NewCatalog(placement, mgr)
	if err != nil {
		return err
	}
	engine, err := ivdss.NewEngine(catalog)
	if err != nil {
		return err
	}
	if err := engine.Distribute(map[string]*relation.Table{
		"positions": positionsTable(),
		"prices":    pricesTable(),
		"limits":    limitsTable(),
	}); err != nil {
		return err
	}
	mgr.Advance(0) // first price sync materializes the replica
	// Simulate the WAN: every remote base-table access costs 200 µs of
	// "network", which the calibration below measures for real.
	engine.SetNetworkDelay(200 * time.Microsecond)

	// Calibrate: execute the query once per base/replica configuration of
	// its replicated tables and record measured processing costs. One
	// wall microseconds (300) count as one experiment minute so the
	// tiny demo tables produce visible latencies.
	costs, err := ivdss.NewCalibratedModel(&ivdss.CountModel{LocalProcess: 1, PerBaseTable: 2, TransmitFlat: 1})
	if err != nil {
		return err
	}
	query := ivdss.Query{
		ID:            "exposure",
		Tables:        []ivdss.TableID{"positions", "prices", "limits"},
		BusinessValue: 1,
	}
	measurements, err := engine.Calibrate(query, exposureSQL, costs, 300*time.Microsecond)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated %d plan configurations from live executions:\n", len(measurements))
	for _, m := range measurements {
		names := make([]string, len(m.Bases))
		for i, b := range m.Bases {
			names[i] = string(b)
		}
		fmt.Printf("  base tables %-26s  measured %v\n", strings.Join(names, ","), m.Elapsed.Round(time.Microsecond))
	}

	rates := ivdss.DiscountRates{CL: .05, SL: .08}
	planner, err := ivdss.NewPlanner(costs, ivdss.PlannerConfig{Rates: rates, Horizon: 30})
	if err != nil {
		return err
	}

	// Ask for the exposure report at three staleness points of the price
	// replica (synced at t=0, next syncs at 5, 10, ...).
	fmt.Println("\nexposure report under the information-value planner:")
	for _, submit := range []ivdss.Time{0.5, 3.0, 4.6} {
		q := query
		q.SubmitAt = submit
		snapshot, err := catalog.Snapshot(q.Tables, submit, 30)
		if err != nil {
			return err
		}
		plan, _, err := planner.Best(q, snapshot, submit)
		if err != nil {
			return err
		}
		result, err := engine.ExecutePlan(exposureSQL, plan)
		if err != nil {
			return err
		}
		lat := plan.Latencies()
		fmt.Printf("\n  t=%.1f  plan: %s\n", submit, plan.Signature())
		fmt.Printf("         CL=%.2f SL=%.2f IV=%.4f\n", lat.CL, lat.SL, plan.Value(rates))
		for _, row := range result.Rows {
			breach := ""
			if row[1].F > row[2].F {
				breach = "  ** OVER LIMIT **"
			}
			fmt.Printf("         %-8s exposure=%10.2f cap=%10.2f%s\n", row[0].S, row[1].F, row[2].F, breach)
		}
	}
	return nil
}

func positionsTable() *relation.Table {
	t := relation.NewTable("positions", relation.MustSchema(
		relation.Column{Name: "po_desk", Type: relation.Str},
		relation.Column{Name: "po_symbol", Type: relation.Str},
		relation.Column{Name: "po_qty", Type: relation.Float},
	))
	for _, p := range []struct {
		desk, sym string
		qty       float64
	}{
		{"rates", "BND1", 1200}, {"rates", "BND2", -400},
		{"equities", "ACME", 900}, {"equities", "GLOBX", 350},
		{"fx", "EURUSD", 50000},
	} {
		t.MustInsert(relation.Row{relation.StrVal(p.desk), relation.StrVal(p.sym), relation.FloatVal(p.qty)})
	}
	return t
}

func pricesTable() *relation.Table {
	t := relation.NewTable("prices", relation.MustSchema(
		relation.Column{Name: "pr_symbol", Type: relation.Str},
		relation.Column{Name: "pr_price", Type: relation.Float},
	))
	for _, p := range []struct {
		sym   string
		price float64
	}{
		{"BND1", 99.4}, {"BND2", 101.2}, {"ACME", 38.5}, {"GLOBX", 112.0}, {"EURUSD", 1.09},
	} {
		t.MustInsert(relation.Row{relation.StrVal(p.sym), relation.FloatVal(p.price)})
	}
	return t
}

func limitsTable() *relation.Table {
	t := relation.NewTable("limits", relation.MustSchema(
		relation.Column{Name: "li_desk", Type: relation.Str},
		relation.Column{Name: "li_max", Type: relation.Float},
	))
	for _, l := range []struct {
		desk string
		cap  float64
	}{
		{"rates", 100000}, {"equities", 50000}, {"fx", 60000},
	} {
		t.MustInsert(relation.Row{relation.StrVal(l.desk), relation.FloatVal(l.cap)})
	}
	return t
}
