// Fraud detection: the live TCP stack end to end.
//
// An insurance company runs claims processing at a branch (the remote
// site) while the fraud desk at headquarters needs near-real-time reports.
// This example starts a remote server with policies and claims tables and
// a DSS server that replicates the slow-changing policies table locally,
// then streams new claims into the branch while repeatedly asking the DSS
// for the fraud report — showing how the chosen plan and the report's
// information value react to data motion and business value.
//
//	go run ./examples/frauddetection
package main

import (
	"fmt"
	"log"
	"time"

	"ivdss"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
)

const fraudReport = `
	SELECT p.p_holder, count(*) AS claims, sum(c.c_amount) AS total
	FROM policies p, claims c
	WHERE p.p_id = c.c_policy AND c.c_amount > 5000
	GROUP BY p.p_holder
	HAVING count(*) > 1
	ORDER BY total DESC`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Branch (remote site 1): policies and claims base tables.
	remote := ivdss.NewRemoteServer()
	if err := remote.AddTable(policiesTable()); err != nil {
		return err
	}
	if err := remote.AddTable(claimsTable()); err != nil {
		return err
	}
	remoteAddr, err := remote.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer remote.Close()

	// --- Headquarters: DSS replicating policies every 300 ms of wall
	// time. TimeScale 20 makes each wall second worth 20 experiment
	// minutes, so latency discounts are visible within a short demo.
	dss, err := ivdss.NewDSSServer(ivdss.DSSConfig{
		Remotes:         map[ivdss.SiteID]string{1: remoteAddr},
		Replicate:       map[ivdss.TableID]time.Duration{"policies": 300 * time.Millisecond},
		Rates:           ivdss.DiscountRates{CL: .02, SL: .05},
		TimeScale:       20,
		ScheduleHorizon: time.Minute,
	})
	if err != nil {
		return err
	}
	dssAddr, err := dss.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer dss.Close()

	fmt.Println("fraud desk online: branch =", remoteAddr, " DSS =", dssAddr)
	fmt.Println()

	// Stream suspicious claims into the branch while the fraud desk polls.
	newClaims := [][]int64{
		{9001, 2, 8200}, // policy 2 again, large amount
		{9002, 4, 7700},
		{9003, 2, 9100},
	}
	for round := 0; round < 4; round++ {
		if round > 0 {
			c := newClaims[round-1]
			if _, err := netproto.Call(remoteAddr, &netproto.Request{
				Kind:  netproto.KindInsert,
				Table: "claims",
				Rows: []relation.Row{{
					relation.IntVal(c[0]), relation.IntVal(c[1]),
					relation.FloatVal(float64(c[2])), relation.DateOf(2026, 7, 6),
				}},
			}, time.Second); err != nil {
				return err
			}
			fmt.Printf("branch: new claim #%d on policy %d for $%d\n", c[0], c[1], c[2])
		}

		resp, err := netproto.Call(dssAddr, &netproto.Request{
			Kind:          netproto.KindExec,
			SQL:           fraudReport,
			BusinessValue: 1,
		}, 10*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("fraud report (round %d): %d flagged holder(s)\n", round+1, resp.Result.NumRows())
		for _, row := range resp.Result.Rows {
			fmt.Printf("    %-10s claims=%s total=$%s\n", row[0].S, row[1], row[2])
		}
		fmt.Printf("    plan: %s\n", resp.Meta.PlanSignature)
		fmt.Printf("    CL=%.2f min  SL=%.2f min  information value=%.4f\n\n",
			resp.Meta.CLMinutes, resp.Meta.SLMinutes, resp.Meta.Value)

		time.Sleep(250 * time.Millisecond)
	}

	// Replica status, as an operator would see it.
	status, err := netproto.Call(dssAddr, &netproto.Request{Kind: netproto.KindStatus}, time.Second)
	if err != nil {
		return err
	}
	for _, r := range status.Replicas {
		fmt.Printf("replica %s @ site %d: staleness %.2f experiment-minutes\n",
			r.Table, r.Site, r.StalenessMinutes)
	}
	return nil
}

func policiesTable() *relation.Table {
	t := relation.NewTable("policies", relation.MustSchema(
		relation.Column{Name: "p_id", Type: relation.Int},
		relation.Column{Name: "p_holder", Type: relation.Str},
		relation.Column{Name: "p_premium", Type: relation.Float},
	))
	for _, p := range []struct {
		id      int64
		holder  string
		premium float64
	}{
		{1, "acme corp", 1200}, {2, "jane roe", 450},
		{3, "john doe", 300}, {4, "oceanic", 2500},
	} {
		t.MustInsert(relation.Row{
			relation.IntVal(p.id), relation.StrVal(p.holder), relation.FloatVal(p.premium),
		})
	}
	return t
}

func claimsTable() *relation.Table {
	t := relation.NewTable("claims", relation.MustSchema(
		relation.Column{Name: "c_id", Type: relation.Int},
		relation.Column{Name: "c_policy", Type: relation.Int},
		relation.Column{Name: "c_amount", Type: relation.Float},
		relation.Column{Name: "c_filed", Type: relation.Date},
	))
	for _, c := range []struct {
		id, policy int64
		amount     float64
	}{
		{8001, 2, 6200}, {8002, 1, 900}, {8003, 4, 5400}, {8004, 3, 450},
	} {
		t.MustInsert(relation.Row{
			relation.IntVal(c.id), relation.IntVal(c.policy),
			relation.FloatVal(c.amount), relation.DateOf(2026, 7, 1),
		})
	}
	return t
}
