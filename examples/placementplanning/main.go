// Placement planning: the data placement advisor (the paper's future
// work) plus pre-calculated routing (Section 3.1) working together.
//
// A retailer's DSS team has the budget to replicate three of its nine
// operational tables. The advisor scores replication plans against a
// representative workload (Monte Carlo over the synchronization process)
// and recommends which tables earn their keep; the dashboard queries are
// then registered with the router so their plans resolve in microseconds
// instead of a full search per request.
//
//	go run ./examples/placementplanning
package main

import (
	"fmt"
	"log"
	"time"

	"ivdss"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tables := []ivdss.TableID{
		"sales", "stores", "products", "suppliers", "shipments",
		"returns", "staff", "promotions", "budgets",
	}
	placement, err := ivdss.UniformPlacement(tables, 3, 1)
	if err != nil {
		return err
	}

	rates := ivdss.DiscountRates{CL: .04, SL: .04}
	cost := &ivdss.CountModel{LocalProcess: 2, PerBaseTable: 3, TransmitFlat: 1}

	// The representative workload: the dashboards the team actually runs,
	// weighted by how often each fires. Sales is in almost everything.
	var workload []ivdss.Query
	add := func(id string, times int, tbls ...ivdss.TableID) {
		for i := 0; i < times; i++ {
			workload = append(workload, ivdss.Query{
				ID:            fmt.Sprintf("%s#%d", id, i),
				Tables:        tbls,
				BusinessValue: 1,
				SubmitAt:      ivdss.Time(len(workload)) * 5,
			})
		}
	}
	add("daily-revenue", 8, "sales", "stores")
	add("stock-outs", 6, "sales", "products", "shipments")
	add("supplier-lag", 3, "suppliers", "shipments")
	add("returns-rate", 3, "sales", "returns")
	add("promo-lift", 2, "sales", "promotions", "products")
	add("budget-variance", 1, "budgets", "staff")

	advisor, err := ivdss.NewAdvisor(ivdss.AdvisorConfig{
		Cost:     cost,
		Rates:    rates,
		SyncMean: 12, // the replication manager can sustain ~12-minute cycles
		Horizon:  40,
	})
	if err != nil {
		return err
	}

	start := time.Now()
	rec, err := advisor.RecommendReplicas(workload, placement, 3)
	if err != nil {
		return err
	}
	fmt.Printf("placement advisor (%d-query workload, budget 3, %v):\n",
		len(workload), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  expected workload IV with no replicas: %.3f\n", rec.BaselineIV)
	for i, step := range rec.Steps {
		fmt.Printf("  %d. replicate %-10s → expected IV %.3f (gain %+.3f)\n",
			i+1, step.Table, step.ExpectedIV, step.Gain)
	}
	fmt.Printf("  total improvement: %+.1f%%\n\n",
		(rec.FinalIV()-rec.BaselineIV)/rec.BaselineIV*100)

	// Register the hottest dashboard with the router: its plans are now a
	// table lookup under the replication manager's QoS window.
	router, err := ivdss.NewRouter(ivdss.RouterConfig{Cost: cost, Rates: rates})
	if err != nil {
		return err
	}
	dashboard := ivdss.Query{
		ID:            "daily-revenue",
		Tables:        []ivdss.TableID{"sales", "stores"},
		BusinessValue: 1,
	}
	sites := make([]ivdss.SiteID, len(dashboard.Tables))
	replicated := make([]bool, len(dashboard.Tables))
	chosen := map[ivdss.TableID]bool{}
	for _, id := range rec.Replicas {
		chosen[id] = true
	}
	for i, id := range dashboard.Tables {
		if sites[i], err = placement.SiteOf(id); err != nil {
			return err
		}
		replicated[i] = chosen[id]
	}
	const qosWindow = 24.0 // QoS: replicas never more than 24 minutes stale
	if err := router.Register(dashboard, sites, replicated, qosWindow); err != nil {
		return err
	}

	fmt.Printf("router: %q registered under a %.0f-minute QoS window\n", dashboard.ID, qosWindow)
	for _, staleness := range []ivdss.Duration{2, 11, 23} {
		now := ivdss.Time(100)
		snapshot := make([]ivdss.TableState, len(dashboard.Tables))
		for i, id := range dashboard.Tables {
			snapshot[i] = ivdss.TableState{ID: id, Site: sites[i]}
			if replicated[i] {
				snapshot[i].Replica = &ivdss.ReplicaState{
					LastSync:  now - staleness,
					NextSyncs: []ivdss.Time{now + qosWindow - staleness, now + 2*qosWindow - staleness},
				}
			}
		}
		begin := time.Now()
		plan, ok := router.Route(dashboard.ID, snapshot, now)
		if !ok {
			return fmt.Errorf("route refused at staleness %v", staleness)
		}
		fmt.Printf("  staleness %4.0f min → %-52s IV=%.3f (routed in %v)\n",
			staleness, plan.Signature(), plan.Value(rates), time.Since(begin).Round(time.Microsecond))
	}
	return nil
}
