// Logistics: workload scheduling with multi-query optimization.
//
// A logistics operator's morning burst: eight decision-support reports
// over shipments, vehicles, depots and routes arrive within two minutes of
// each other. Because their candidate execution ranges overlap, the
// workload manager groups them and orders them with the genetic algorithm
// to maximize total information value; the example compares that schedule
// with plain first-come-first-served, then demonstrates the
// anti-starvation aging rule on an overloaded dispatcher.
//
//	go run ./examples/logistics
package main

import (
	"fmt"
	"log"

	"ivdss"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tables := []ivdss.TableID{"shipments", "vehicles", "depots", "routes", "drivers", "fuel"}
	placement, err := ivdss.UniformPlacement(tables, 3, 1)
	if err != nil {
		return err
	}
	mgr := ivdss.NewReplicationManager()
	for _, spec := range []struct {
		table  ivdss.TableID
		period ivdss.Duration
	}{{"shipments", 5}, {"vehicles", 8}, {"routes", 12}} {
		sched, err := ivdss.PeriodicSchedule(spec.period, 0, 10000)
		if err != nil {
			return err
		}
		if err := mgr.Register(spec.table, sched); err != nil {
			return err
		}
	}
	catalog, err := ivdss.NewCatalog(placement, mgr)
	if err != nil {
		return err
	}

	rates := ivdss.DiscountRates{CL: .12, SL: .12}
	cost := &ivdss.CountModel{LocalProcess: 1, PerBaseTable: 1.5, TransmitFlat: .5}
	planner, err := ivdss.NewPlanner(cost, ivdss.PlannerConfig{Rates: rates, Horizon: 30})
	if err != nil {
		return err
	}
	ev := &ivdss.Evaluator{Planner: planner, Catalog: catalog, Horizon: 30}

	// The morning burst: reports with different table footprints and
	// business values, all arriving within two minutes.
	burst := []ivdss.Query{
		{ID: "late-shipments", Tables: []ivdss.TableID{"shipments", "routes"}, BusinessValue: 1.0, SubmitAt: 0},
		{ID: "fleet-util", Tables: []ivdss.TableID{"vehicles", "drivers"}, BusinessValue: .8, SubmitAt: .2},
		{ID: "depot-load", Tables: []ivdss.TableID{"depots", "shipments"}, BusinessValue: .9, SubmitAt: .5},
		{ID: "fuel-burn", Tables: []ivdss.TableID{"fuel", "vehicles", "routes"}, BusinessValue: .6, SubmitAt: .8},
		{ID: "missed-sla", Tables: []ivdss.TableID{"shipments", "depots", "routes"}, BusinessValue: 1.0, SubmitAt: 1.1},
		{ID: "driver-hours", Tables: []ivdss.TableID{"drivers"}, BusinessValue: .5, SubmitAt: 1.4},
		{ID: "reroute-plan", Tables: []ivdss.TableID{"routes", "vehicles"}, BusinessValue: .9, SubmitAt: 1.7},
		{ID: "backlog", Tables: []ivdss.TableID{"shipments"}, BusinessValue: .7, SubmitAt: 2.0},
	}

	fifo, err := ivdss.ScheduleFIFO(burst, ev)
	if err != nil {
		return err
	}
	mqo, err := ivdss.ScheduleMQO(burst, ev, ivdss.GAConfig{Seed: 7})
	if err != nil {
		return err
	}

	fmt.Println("morning burst: 8 overlapping reports")
	fmt.Printf("  FIFO (without MQO): total IV %.3f, mean %.3f\n", fifo.TotalValue, fifo.MeanValue())
	fmt.Printf("  GA MQO:             total IV %.3f, mean %.3f  (%d workload(s), %d GA evaluations)\n",
		mqo.TotalValue, mqo.MeanValue(), len(mqo.Workloads), mqo.Evaluations)
	gain := (mqo.TotalValue - fifo.TotalValue) / fifo.TotalValue * 100
	fmt.Printf("  improvement: %.1f%%\n\n", gain)

	fmt.Println("MQO execution order:")
	for _, o := range mqo.Outcomes {
		fmt.Printf("  %-14s start=%5.1f  CL=%5.1f  SL=%5.1f  IV=%.3f  [%s]\n",
			o.Query.ID, o.Plan.Start, o.Latencies.CL, o.Latencies.SL, o.Value, o.Plan.Signature())
	}

	// Aging under overload: a saturating afternoon stream plus one cheap
	// compliance report that pure value-maximizing dispatch would starve.
	fmt.Println("\novernight overload: aging prevents starvation of the compliance report")
	for _, aging := range []ivdss.Aging{{}, {Coefficient: .03, Exponent: 1.5}} {
		s := ivdss.NewSimulator()
		d, err := ivdss.NewDispatcher(s, &ivdss.IVQPStrategy{Planner: planner, Catalog: catalog, Horizon: 30}, rates, 1, aging)
		if err != nil {
			return err
		}
		var stream []ivdss.Query
		stream = append(stream, ivdss.Query{
			ID: "compliance", Tables: []ivdss.TableID{"fuel"}, BusinessValue: .2, SubmitAt: 1,
		})
		for i := 0; i < 30; i++ {
			stream = append(stream, ivdss.Query{
				ID:            fmt.Sprintf("ops-%02d", i),
				Tables:        []ivdss.TableID{"shipments", "routes"},
				BusinessValue: 1,
				SubmitAt:      ivdss.Time(i) * .7,
			})
		}
		d.SubmitAll(stream)
		s.Run()
		if err := d.Err(); err != nil {
			return err
		}
		label := "without aging"
		if aging.Enabled() {
			label = "with aging   "
		}
		for _, o := range d.Outcomes() {
			if o.Query.ID == "compliance" {
				fmt.Printf("  %s: compliance report waited %.1f minutes\n", label, o.Wait)
			}
		}
	}
	return nil
}
