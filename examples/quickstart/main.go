// Quickstart: the information-value model and the IVQP planner in fifty
// lines of calls.
//
// A report's information value is its business value discounted by
// computational latency (CL) and synchronization latency (SL):
//
//	IV = BusinessValue × (1−λCL)^CL × (1−λSL)^SL
//
// This example builds a tiny hybrid federation — three base tables on two
// remote sites, one replicated locally on a 30-minute cycle — and shows
// how the optimal plan flips between remote base tables, the local
// replica, and a deliberately delayed execution as the discount rates
// change.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ivdss"
)

func main() {
	// Catalog: orders and inventory at site 1, customers at site 2;
	// inventory is replicated locally and synchronizes every 30 minutes.
	placement, err := ivdss.NewPlacement(map[ivdss.TableID]ivdss.SiteID{
		"orders": 1, "inventory": 1, "customers": 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr := ivdss.NewReplicationManager()
	sched, err := ivdss.PeriodicSchedule(30, 10, 200)
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Register("inventory", sched); err != nil {
		log.Fatal(err)
	}
	catalog, err := ivdss.NewCatalog(placement, mgr)
	if err != nil {
		log.Fatal(err)
	}

	// Cost model: an all-replica plan takes 2 minutes; every base table
	// read remotely adds 4, plus 1 minute of result transmission.
	cost := &ivdss.CountModel{LocalProcess: 2, PerBaseTable: 4, TransmitFlat: 1}

	// The report joins orders with inventory; submitted at t=25, i.e. 15
	// minutes after inventory last synchronized (t=10) and 15 minutes
	// before the next cycle completes (t=40).
	query := ivdss.Query{
		ID:            "stock-risk",
		Tables:        []ivdss.TableID{"orders", "inventory"},
		BusinessValue: 1,
		SubmitAt:      25,
	}

	fmt.Println("report: stock-risk (orders ⨝ inventory), submitted at t=25")
	fmt.Println("inventory replica: synced at t=10, next sync completes at t=40")
	fmt.Println()
	fmt.Printf("%-28s  %-44s  %6s  %6s  %6s\n", "discount rates", "chosen plan", "CL", "SL", "IV")

	for _, rates := range []ivdss.DiscountRates{
		{CL: .10, SL: .01}, // slow answers are expensive → stale replica now
		{CL: .05, SL: .10}, // both matter → fresh base tables, remotely
		{CL: .01, SL: .10}, // stale data is expensive, time is cheap → wait for the sync
	} {
		planner, err := ivdss.NewPlanner(cost, ivdss.PlannerConfig{Rates: rates, Horizon: 60})
		if err != nil {
			log.Fatal(err)
		}
		snapshot, err := catalog.Snapshot(query.Tables, query.SubmitAt, 60)
		if err != nil {
			log.Fatal(err)
		}
		plan, _, err := planner.Best(query, snapshot, query.SubmitAt)
		if err != nil {
			log.Fatal(err)
		}
		lat := plan.Latencies()
		fmt.Printf("λCL=%.2f λSL=%.2f             %-44s  %6.1f  %6.1f  %6.3f\n",
			rates.CL, rates.SL, plan.Signature(), lat.CL, lat.SL, plan.Value(rates))
	}

	fmt.Println()
	fmt.Println("The same query gets three different optimal plans purely from the")
	fmt.Println("business's tolerance for lateness (λCL) versus staleness (λSL).")
}
