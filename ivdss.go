// Package ivdss is an information-value-driven near-real-time decision
// support system: a Go reproduction of Yan, Li and Xu, "Information
// Value-driven Near Real-Time Decision Support Systems" (ICDCS 2009).
//
// A report's information value is its business value discounted by two
// latencies,
//
//	IV = BusinessValue × (1−λCL)^CL × (1−λSL)^SL
//
// where CL is computational latency (queuing + processing + transmission)
// and SL is synchronization latency (oldest data freshness to result
// receipt). The library plans queries over a hybrid federation — remote
// base tables plus periodically synchronized local replicas — to maximize
// IV rather than response time, schedules workloads of conflicting queries
// with a genetic algorithm, and prevents starvation with an aging rule.
//
// This root package re-exports the stable API from the internal packages:
//
//   - the IV model and the IVQP planner (internal/core)
//   - cost models (internal/costmodel)
//   - replication schedules and the replica manager (internal/replication)
//   - placement, catalog and the embedded execution engine
//     (internal/federation)
//   - workload scheduling: GA MQO, FIFO, the aging dispatcher
//     (internal/scheduler)
//   - the relational engine and SQL subset (internal/relation,
//     internal/sqlmini)
//   - live TCP servers (internal/server, internal/netproto)
//   - workload substrates (internal/tpch, internal/synth)
//
// See examples/ for runnable end-to-end scenarios and cmd/ for the server,
// client, and benchmark binaries.
package ivdss

import (
	"ivdss/internal/advisor"
	"ivdss/internal/core"
	"ivdss/internal/costmodel"
	"ivdss/internal/federation"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
	"ivdss/internal/replication"
	"ivdss/internal/router"
	"ivdss/internal/scheduler"
	"ivdss/internal/server"
	"ivdss/internal/sim"
	"ivdss/internal/sqlmini"
)

// Core information-value model.
type (
	// Time is a point on the experiment clock, in minutes.
	Time = core.Time
	// Duration is a span of experiment time, in minutes.
	Duration = core.Duration
	// TableID names a base table in the federation catalog.
	TableID = core.TableID
	// SiteID identifies a server; 0 is the local DSS, remotes start at 1.
	SiteID = core.SiteID
	// Query is a decision-support query as the planner sees it.
	Query = core.Query
	// DiscountRates carries λCL and λSL.
	DiscountRates = core.DiscountRates
	// Latencies are one report's computational and synchronization
	// latencies.
	Latencies = core.Latencies
	// Aging is the anti-starvation adjustment of Section 3.3.
	Aging = core.Aging
)

// Planner types.
type (
	// Planner selects maximal-information-value plans.
	Planner = core.Planner
	// PlannerConfig parameterizes plan search.
	PlannerConfig = core.PlannerConfig
	// SearchMode selects the plan-space exploration strategy.
	SearchMode = core.SearchMode
	// SearchStats instruments one planning episode.
	SearchStats = core.SearchStats
	// Plan is a fully specified way to evaluate one query.
	Plan = core.Plan
	// TableAccess is one table-level decision inside a plan.
	TableAccess = core.TableAccess
	// AccessKind says where a plan reads one table from.
	AccessKind = core.AccessKind
	// TableState is the catalog snapshot the planner receives per table.
	TableState = core.TableState
	// ReplicaState describes the local replica of one table.
	ReplicaState = core.ReplicaState
	// DataSource is one way a plan can read a table: remote base,
	// synchronized replica, or materialized view.
	DataSource = core.DataSource
	// CostEstimate decomposes a plan's computational latency.
	CostEstimate = core.CostEstimate
	// CostModel estimates computational-latency components.
	CostModel = core.CostModel
)

// Search modes.
const (
	// ScatterGather is the paper's bounded prefix search (the default).
	ScatterGather = core.ScatterGather
	// ScatterGatherFull enumerates all subsets on the bounded timeline.
	ScatterGatherFull = core.ScatterGatherFull
	// Exhaustive is the unbounded correctness reference.
	Exhaustive = core.Exhaustive
)

// Access kinds.
const (
	// AccessBase reads the authoritative base table at its remote site.
	AccessBase = core.AccessBase
	// AccessReplica reads a synchronized replica at the local DSS server.
	AccessReplica = core.AccessReplica
	// AccessView reads an incrementally maintained materialized view at
	// the local DSS server.
	AccessView = core.AccessView
)

// Materialized views.
type (
	// ViewID names a materialized view.
	ViewID = core.ViewID
	// ViewDef is a view's registered definition: the covered query and the
	// base table it folds.
	ViewDef = core.ViewDef
	// ViewState describes one synchronized view to the planner.
	ViewState = core.ViewState
	// ViewSpec configures one materialized view on a live DSS server.
	ViewSpec = server.ViewSpec
	// ViewCandidate offers a view to the placement advisor.
	ViewCandidate = advisor.ViewCandidate
)

// ViewUnit namespaces a view ID into the synchronized-unit ("view:<id>")
// space shared with replicated tables.
func ViewUnit(id ViewID) TableID { return core.ViewUnit(id) }

// ViewOfUnit reports whether a synchronized unit is a view, and which.
func ViewOfUnit(id TableID) (ViewID, bool) { return core.ViewOfUnit(id) }

// LocalSite is the DSS (federation) server itself.
const LocalSite = core.LocalSite

// InformationValue computes BusinessValue × (1−λCL)^CL × (1−λSL)^SL.
func InformationValue(businessValue float64, lat Latencies, r DiscountRates) float64 {
	return core.InformationValue(businessValue, lat, r)
}

// ToleratedCL returns the largest CL that still reaches the target value
// at zero SL — the scatter-and-gather search bound.
func ToleratedCL(businessValue, target float64, r DiscountRates) Duration {
	return core.ToleratedCL(businessValue, target, r)
}

// NewPlanner validates the configuration and returns a Planner.
func NewPlanner(cost CostModel, cfg PlannerConfig) (*Planner, error) {
	return core.NewPlanner(cost, cfg)
}

// FixedPlan builds a single-access-kind plan (the baselines' shape).
func FixedPlan(q Query, snapshot []TableState, now Time, cost CostModel, choose func(TableState) AccessKind) (Plan, error) {
	return core.FixedPlan(q, snapshot, now, cost, choose)
}

// Cost models.
type (
	// CountModel charges by the number of remote base tables and sites.
	CountModel = costmodel.CountModel
	// WeightedModel charges per-table remote weights.
	WeightedModel = costmodel.WeightedModel
	// CalibratedModel serves measured per-configuration costs.
	CalibratedModel = costmodel.CalibratedModel
)

// NewCalibratedModel returns an empty calibration cache over a fallback.
func NewCalibratedModel(fallback CostModel) (*CalibratedModel, error) {
	return costmodel.NewCalibratedModel(fallback)
}

// Replication.
type (
	// SyncSchedule is a table's synchronization completion times.
	SyncSchedule = replication.Schedule
	// ReplicationManager tracks every replicated table's sync state.
	ReplicationManager = replication.Manager
	// SyncEvent records one completed synchronization.
	SyncEvent = replication.SyncEvent
)

// NewReplicationManager returns an empty replication manager.
func NewReplicationManager() *ReplicationManager { return replication.NewManager() }

// PeriodicSchedule returns a fixed-period synchronization schedule.
func PeriodicSchedule(period Duration, offset, until Time) (SyncSchedule, error) {
	return replication.Periodic(period, offset, until)
}

// ExponentialSchedule returns a schedule with exponential inter-sync gaps.
func ExponentialSchedule(mean Duration, seed int64, until Time) (SyncSchedule, error) {
	return replication.Exponential(mean, seed, until)
}

// Federation.
type (
	// Placement maps base tables to remote sites.
	Placement = federation.Placement
	// Catalog combines placement and replication state for the planner.
	Catalog = federation.Catalog
	// Engine executes plans over live in-process data.
	Engine = federation.Engine
	// Site is an in-process remote server holding base tables.
	Site = federation.Site
)

// NewPlacement builds a placement from an explicit assignment.
func NewPlacement(siteOf map[TableID]SiteID) (*Placement, error) {
	return federation.NewPlacement(siteOf)
}

// UniformPlacement spreads tables across sites round-robin.
func UniformPlacement(tables []TableID, nSites int, seed int64) (*Placement, error) {
	return federation.UniformPlacement(tables, nSites, seed)
}

// SkewedPlacement places half the tables on site 1, a quarter on site 2, …
func SkewedPlacement(tables []TableID, nSites int, seed int64) (*Placement, error) {
	return federation.SkewedPlacement(tables, nSites, seed)
}

// ChooseReplicas picks k tables to replicate locally.
func ChooseReplicas(tables []TableID, k int, seed int64) ([]TableID, error) {
	return federation.ChooseReplicas(tables, k, seed)
}

// NewCatalog wires a placement to a replication manager.
func NewCatalog(p *Placement, m *ReplicationManager) (*Catalog, error) {
	return federation.NewCatalog(p, m)
}

// NewEngine builds an execution engine over the catalog.
func NewEngine(catalog *Catalog) (*Engine, error) { return federation.NewEngine(catalog) }

// NewSite returns an empty in-process remote site.
func NewSite(id SiteID) *Site { return federation.NewSite(id) }

// Scheduling.
type (
	// Evaluator deterministically scores a workload execution order.
	Evaluator = scheduler.Evaluator
	// Outcome records how one query fared under a schedule.
	Outcome = scheduler.Outcome
	// SequenceResult is the outcome of one execution order.
	SequenceResult = scheduler.SequenceResult
	// MQOResult is the outcome of multi-query optimization.
	MQOResult = scheduler.MQOResult
	// GAConfig parameterizes the genetic algorithm.
	GAConfig = scheduler.GAConfig
	// Workload groups queries with overlapping execution ranges.
	Workload = scheduler.Workload
	// Dispatcher runs queries through DSS execution slots in a simulation.
	Dispatcher = scheduler.Dispatcher
	// Strategy chooses an execution plan at dispatch time.
	Strategy = scheduler.Strategy
	// IVQPStrategy plans with the information-value-driven planner.
	IVQPStrategy = scheduler.IVQPStrategy
	// FixedStrategy always uses one access kind (the paper's baselines).
	FixedStrategy = scheduler.FixedStrategy
)

// Simulator is the discrete event simulator that drives Dispatcher runs
// (and the benchmark harness).
type Simulator = sim.Simulator

// NewSimulator returns a simulator with the clock at zero.
func NewSimulator() *Simulator { return sim.New() }

// NewDispatcher returns an online dispatcher bound to the simulator.
func NewDispatcher(s *Simulator, strategy Strategy, rates DiscountRates, slots int, aging Aging) (*Dispatcher, error) {
	return scheduler.NewDispatcher(s, strategy, rates, slots, aging)
}

// ScheduleMQO orders overlapping workloads with the genetic algorithm.
func ScheduleMQO(queries []Query, ev *Evaluator, cfg GAConfig) (MQOResult, error) {
	return scheduler.ScheduleMQO(queries, ev, cfg)
}

// ScheduleFIFO runs queries in submission order (the "without MQO"
// baseline).
func ScheduleFIFO(queries []Query, ev *Evaluator) (SequenceResult, error) {
	return scheduler.ScheduleFIFO(queries, ev)
}

// OptimizeOrder runs the GA over permutations of [0, n).
func OptimizeOrder(n int, fitness func(order []int) (float64, error), cfg GAConfig) ([]int, float64, scheduler.GAStats, error) {
	return scheduler.OptimizeOrder(n, fitness, cfg)
}

// Placement advisor (the paper's future work, implemented).
type (
	// Advisor recommends replication plans for a workload.
	Advisor = advisor.Advisor
	// AdvisorConfig parameterizes the advisor.
	AdvisorConfig = advisor.Config
	// Recommendation is the advisor's output.
	Recommendation = advisor.Recommendation
)

// NewAdvisor validates the config and returns an Advisor.
func NewAdvisor(cfg AdvisorConfig) (*Advisor, error) { return advisor.New(cfg) }

// Pre-calculated routing (Section 3.1 of the paper).
type (
	// Router serves precomputed plan shapes for registered queries.
	Router = router.Router
	// RouterConfig parameterizes the router.
	RouterConfig = router.Config
)

// NewRouter validates the config and returns an empty Router.
func NewRouter(cfg RouterConfig) (*Router, error) { return router.New(cfg) }

// Relational engine and SQL subset.
type (
	// RelTable is an in-memory relation.
	RelTable = relation.Table
	// RelSchema is an ordered list of typed columns.
	RelSchema = relation.Schema
	// RelColumn is one named, typed attribute.
	RelColumn = relation.Column
	// RelRow is one tuple.
	RelRow = relation.Row
	// RelValue is one typed cell.
	RelValue = relation.Value
	// SQLCatalog supplies the SQL executor with tables by name.
	SQLCatalog = sqlmini.Catalog
)

// RunSQL parses and executes a query of the supported SQL subset.
func RunSQL(query string, cat SQLCatalog) (*RelTable, error) { return sqlmini.Run(query, cat) }

// Live servers and client protocol.
type (
	// RemoteServer serves base tables over TCP.
	RemoteServer = server.RemoteServer
	// DSSServer is the live federation/DSS server.
	DSSServer = server.DSSServer
	// DSSConfig wires a DSS server to its remote sites.
	DSSConfig = server.DSSConfig
	// Request and Response are the wire messages.
	Request  = netproto.Request
	Response = netproto.Response
)

// NewRemoteServer returns a remote site server with no tables.
func NewRemoteServer() *RemoteServer { return server.NewRemoteServer() }

// NewDSSServer builds a live DSS server from its config.
func NewDSSServer(cfg DSSConfig) (*DSSServer, error) { return server.NewDSSServer(cfg) }
