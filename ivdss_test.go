package ivdss_test

import (
	"math"
	"testing"

	"ivdss"
)

// TestFacadeEndToEnd exercises the whole public API surface the way a
// downstream user would: build a catalog, plan a query, compare against
// the baselines, and schedule a workload.
func TestFacadeEndToEnd(t *testing.T) {
	tables := []ivdss.TableID{"accounts", "trades", "positions", "limits"}
	placement, err := ivdss.UniformPlacement(tables, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mgr := ivdss.NewReplicationManager()
	sched, err := ivdss.PeriodicSchedule(10, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("accounts", sched); err != nil {
		t.Fatal(err)
	}
	catalog, err := ivdss.NewCatalog(placement, mgr)
	if err != nil {
		t.Fatal(err)
	}

	rates := ivdss.DiscountRates{CL: .02, SL: .05}
	cost := &ivdss.CountModel{LocalProcess: 2, PerBaseTable: 3, TransmitFlat: 1}
	planner, err := ivdss.NewPlanner(cost, ivdss.PlannerConfig{Rates: rates, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}

	q := ivdss.Query{
		ID:            "exposure",
		Tables:        []ivdss.TableID{"accounts", "trades"},
		BusinessValue: 1,
		SubmitAt:      25,
	}
	snap, err := catalog.Snapshot(q.Tables, q.SubmitAt, 60)
	if err != nil {
		t.Fatal(err)
	}
	best, stats, err := planner.Best(q, snap, q.SubmitAt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PlansEvaluated == 0 {
		t.Error("no plans evaluated")
	}

	fed, err := ivdss.FixedPlan(q, snap, q.SubmitAt, cost, func(ivdss.TableState) ivdss.AccessKind {
		return ivdss.AccessBase
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Value(rates) < fed.Value(rates)-1e-9 {
		t.Errorf("IVQP %v below federation %v", best.Value(rates), fed.Value(rates))
	}

	// Workload scheduling through the facade.
	workload := []ivdss.Query{
		{ID: "w1", Tables: []ivdss.TableID{"accounts"}, BusinessValue: 1, SubmitAt: 0},
		{ID: "w2", Tables: []ivdss.TableID{"positions", "limits"}, BusinessValue: 1, SubmitAt: 1},
		{ID: "w3", Tables: []ivdss.TableID{"trades"}, BusinessValue: 1, SubmitAt: 2},
	}
	ev := &ivdss.Evaluator{Planner: planner, Catalog: catalog, Horizon: 60}
	fifo, err := ivdss.ScheduleFIFO(workload, ev)
	if err != nil {
		t.Fatal(err)
	}
	mqo, err := ivdss.ScheduleMQO(workload, ev, ivdss.GAConfig{Seed: 1, Generations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if mqo.TotalValue < fifo.TotalValue-1e-9 {
		t.Errorf("MQO %v below FIFO %v", mqo.TotalValue, fifo.TotalValue)
	}
}

func TestFacadeInformationValue(t *testing.T) {
	got := ivdss.InformationValue(1, ivdss.Latencies{CL: 10, SL: 10}, ivdss.DiscountRates{CL: .1, SL: .1})
	if want := math.Pow(.9, 20); math.Abs(got-want) > 1e-12 {
		t.Errorf("IV = %v, want %v", got, want)
	}
	if b := ivdss.ToleratedCL(1, got, ivdss.DiscountRates{CL: .1, SL: .1}); math.Abs(b-20) > 1e-9 {
		t.Errorf("ToleratedCL = %v, want 20", b)
	}
}

func TestFacadeAging(t *testing.T) {
	a := ivdss.Aging{Coefficient: .01, Exponent: 2}
	if a.Boost(3) != .09 {
		t.Errorf("Boost = %v", a.Boost(3))
	}
}

func TestFacadeGA(t *testing.T) {
	order, fit, _, err := ivdss.OptimizeOrder(4, func(o []int) (float64, error) {
		// Reward descending order.
		score := 0.0
		for i, g := range o {
			if g == len(o)-1-i {
				score++
			}
		}
		return score, nil
	}, ivdss.GAConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fit != 4 {
		t.Errorf("GA missed the trivial optimum: %v %v", order, fit)
	}
}

// TestFacadeBreadth touches the wrapper surface not exercised elsewhere in
// this package's tests.
func TestFacadeBreadth(t *testing.T) {
	tables := []ivdss.TableID{"a", "b", "c", "d"}
	if _, err := ivdss.SkewedPlacement(tables, 2, 1); err != nil {
		t.Error(err)
	}
	picked, err := ivdss.ChooseReplicas(tables, 2, 1)
	if err != nil || len(picked) != 2 {
		t.Errorf("ChooseReplicas = %v, %v", picked, err)
	}
	if _, err := ivdss.ExponentialSchedule(5, 1, 100); err != nil {
		t.Error(err)
	}
	if site := ivdss.NewSite(3); site.ID() != 3 {
		t.Error("NewSite id")
	}
	if _, err := ivdss.NewCalibratedModel(&ivdss.CountModel{}); err != nil {
		t.Error(err)
	}
	if _, err := ivdss.NewAdvisor(ivdss.AdvisorConfig{}); err == nil {
		t.Error("empty advisor config accepted")
	}
	if _, err := ivdss.NewRouter(ivdss.RouterConfig{}); err == nil {
		t.Error("empty router config accepted")
	}
	if srv := ivdss.NewRemoteServer(); srv == nil {
		t.Error("nil remote server")
	}
	if _, err := ivdss.NewDSSServer(ivdss.DSSConfig{}); err == nil {
		t.Error("empty DSS config accepted")
	}
	sim := ivdss.NewSimulator()
	if sim.Now() != 0 {
		t.Error("fresh simulator clock")
	}
	if _, err := ivdss.NewDispatcher(sim, nil, ivdss.DiscountRates{}, 1, ivdss.Aging{}); err == nil {
		t.Error("nil strategy accepted")
	}
}

// TestFacadeEngineFlow drives the embedded engine through the facade.
func TestFacadeEngineFlow(t *testing.T) {
	placement, err := ivdss.NewPlacement(map[ivdss.TableID]ivdss.SiteID{"kv": 1})
	if err != nil {
		t.Fatal(err)
	}
	mgr := ivdss.NewReplicationManager()
	sched, err := ivdss.PeriodicSchedule(10, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Register("kv", sched); err != nil {
		t.Fatal(err)
	}
	catalog, err := ivdss.NewCatalog(placement, mgr)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := ivdss.NewEngine(catalog)
	if err != nil {
		t.Fatal(err)
	}
	kv := &ivdss.RelTable{
		Name:   "kv",
		Schema: ivdss.RelSchema{Cols: []ivdss.RelColumn{{Name: "k", Type: 1}, {Name: "v", Type: 1}}},
		Rows:   []ivdss.RelRow{{{T: 1, I: 1}, {T: 1, I: 10}}, {{T: 1, I: 2}, {T: 1, I: 20}}},
	}
	if err := engine.Distribute(map[string]*ivdss.RelTable{"kv": kv}); err != nil {
		t.Fatal(err)
	}
	mgr.Advance(0)
	q := ivdss.Query{ID: "sum", Tables: []ivdss.TableID{"kv"}, BusinessValue: 1}
	snap, err := catalog.Snapshot(q.Tables, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ivdss.FixedPlan(q, snap, 0, &ivdss.CountModel{LocalProcess: 1}, func(ivdss.TableState) ivdss.AccessKind {
		return ivdss.AccessReplica
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.ExecutePlan("SELECT sum(v) AS s FROM kv", plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].F != 30 {
		t.Errorf("sum = %v", out.Rows[0][0])
	}
}
