// Command ivdss-lint runs the repository's invariant analyzers: clock,
// rand, context, lock, and metric discipline (see internal/analysis and
// DESIGN.md §8).
//
// Standalone, it lints a whole module tree:
//
//	ivdss-lint            # the module at the current directory
//	ivdss-lint path/to/mod
//
// It also implements the `go vet -vettool` protocol, which is how CI
// runs it with go's per-package build caching:
//
//	go build -o /tmp/ivdss-lint ./cmd/ivdss-lint
//	go vet -vettool=/tmp/ivdss-lint ./...
//
// Findings are suppressed line-by-line with
// `//lint:allow <analyzer>(reason)`; the reason is mandatory.
package main

import (
	"os"

	"ivdss/internal/analysis/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
