// Command ivqp is the client: it submits SQL to a DSS server (or directly
// to a remote site with -remote) and prints the result rows plus the
// report's information-value accounting.
//
//	ivqp -addr 127.0.0.1:7100 -value 1.0 \
//	    "SELECT c_mktsegment, count(*) AS n FROM customer GROUP BY c_mktsegment"
//	ivqp -addr 127.0.0.1:7100 -status
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ivdss/internal/netproto"
	"ivdss/internal/relation"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "DSS (or remote) server address")
	value := flag.Float64("value", 1, "business value of the report")
	status := flag.Bool("status", false, "print DSS replica status instead of running a query")
	showMetrics := flag.Bool("metrics", false, "print DSS server metrics instead of running a query")
	remote := flag.Bool("remote", false, "talk to a remote site server (bypasses IV planning)")
	register := flag.Bool("register", false, "pre-register the query for fast routing instead of running it")
	batch := flag.Bool("batch", false, "treat the argument as a ';'-separated workload and submit it for MQO scheduling")
	flag.Parse()

	if err := run(*addr, *value, *status, *showMetrics, *remote, *register, *batch, strings.Join(flag.Args(), " ")); err != nil {
		fmt.Fprintln(os.Stderr, "ivqp:", err)
		os.Exit(1)
	}
}

func run(addr string, value float64, status, showMetrics, remote, register, batch bool, sql string) error {
	if batch {
		return runBatch(addr, value, sql)
	}
	if register {
		if strings.TrimSpace(sql) == "" {
			return fmt.Errorf("no SQL given to register")
		}
		if _, err := netproto.Call(addr, &netproto.Request{
			Kind: netproto.KindRegister, SQL: sql, BusinessValue: value,
		}, 30*time.Second); err != nil {
			return err
		}
		fmt.Println("registered: plans pre-calculated for routing")
		return nil
	}
	if showMetrics {
		resp, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindMetrics}, 5*time.Second)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(resp.Metrics))
		for name := range resp.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-28s %g\n", name, resp.Metrics[name])
		}
		return nil
	}
	if status {
		resp, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindStatus}, 5*time.Second)
		if err != nil {
			return err
		}
		if len(resp.Sites) > 0 {
			fmt.Printf("%-5s %-22s %-10s %s\n", "SITE", "ADDR", "BREAKER", "CONSEC FAILURES")
			for _, st := range resp.Sites {
				fmt.Printf("%-5d %-22s %-10s %d\n", st.Site, st.Addr, st.Breaker, st.ConsecutiveFailures)
			}
			fmt.Println()
		}
		fmt.Printf("%-16s %-5s %-12s %s\n", "TABLE", "SITE", "LAST SYNC", "STALENESS (min)")
		for _, r := range resp.Replicas {
			fmt.Printf("%-16s %-5d %-12.2f %.2f\n", r.Table, r.Site, r.LastSyncMinutes, r.StalenessMinutes)
		}
		return nil
	}
	if strings.TrimSpace(sql) == "" {
		return fmt.Errorf("no SQL given (pass it as the final argument)")
	}
	req := &netproto.Request{Kind: netproto.KindExec, SQL: sql, BusinessValue: value}
	start := time.Now()
	resp, err := netproto.Call(addr, req, 5*time.Minute)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	printTable(resp.Result)
	if !remote && resp.Meta != nil {
		fmt.Printf("\nplan: %s\n", resp.Meta.PlanSignature)
		fmt.Printf("CL = %.2f min, SL = %.2f min, information value = %.4f (wall %v)\n",
			resp.Meta.CLMinutes, resp.Meta.SLMinutes, resp.Meta.Value, elapsed.Round(time.Millisecond))
		if resp.Meta.Degraded {
			fmt.Println("DEGRADED: a base site was down; the report used local replicas (SL reflects their true staleness)")
		}
	}
	return nil
}

func printTable(t *relation.Table) {
	if t == nil {
		return
	}
	widths := make([]int, t.Schema.Arity())
	for i, c := range t.Schema.Cols {
		widths[i] = len(c.Name)
	}
	rendered := make([][]string, len(t.Rows))
	for ri, row := range t.Rows {
		rendered[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			rendered[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range t.Schema.Cols {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("%-*s", widths[i], strings.ToUpper(c.Name))
	}
	fmt.Println()
	for _, row := range rendered {
		for i, cell := range row {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%-*s", widths[i], cell)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", t.NumRows())
}

// runBatch submits a ';'-separated workload for multi-query-optimized
// execution and prints each member's result and IV accounting.
func runBatch(addr string, value float64, sql string) error {
	var queries []netproto.BatchQuery
	for _, part := range strings.Split(sql, ";") {
		if q := strings.TrimSpace(part); q != "" {
			queries = append(queries, netproto.BatchQuery{SQL: q, BusinessValue: value})
		}
	}
	if len(queries) == 0 {
		return fmt.Errorf("no queries in batch (separate with ';')")
	}
	start := time.Now()
	resp, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindBatch, Batch: queries}, 10*time.Minute)
	if err != nil {
		return err
	}
	var total float64
	for i, item := range resp.Batch {
		fmt.Printf("--- query %d ---\n", i+1)
		if item.Err != "" {
			if item.Degraded {
				fmt.Printf("DEGRADED ERROR: %s\n", item.Err)
			} else {
				fmt.Printf("ERROR: %s\n", item.Err)
			}
			continue
		}
		printTable(item.Result)
		fmt.Printf("plan: %s\nCL = %.2f min, SL = %.2f min, IV = %.4f\n",
			item.Meta.PlanSignature, item.Meta.CLMinutes, item.Meta.SLMinutes, item.Meta.Value)
		if item.Degraded {
			fmt.Println("DEGRADED: answered from local replicas because a base site was down")
		}
		total += item.Meta.Value
	}
	fmt.Printf("\nworkload: %d queries, total IV %.4f (wall %v)\n",
		len(resp.Batch), total, time.Since(start).Round(time.Millisecond))
	return nil
}
