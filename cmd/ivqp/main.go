// Command ivqp is the client: it submits SQL to a DSS server (or directly
// to a remote site with -remote) and prints the result rows plus the
// report's information-value accounting.
//
//	ivqp -addr 127.0.0.1:7100 -value 1.0 \
//	    "SELECT c_mktsegment, count(*) AS n FROM customer GROUP BY c_mktsegment"
//	ivqp -addr 127.0.0.1:7100 -status
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/netproto"
	"ivdss/internal/relation"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "DSS (or remote) server address")
	value := flag.Float64("value", 1, "business value of the report")
	status := flag.Bool("status", false, "print DSS replica status instead of running a query")
	showMetrics := flag.Bool("metrics", false, "print DSS server metrics instead of running a query")
	remote := flag.Bool("remote", false, "talk to a remote site server (bypasses IV planning)")
	register := flag.Bool("register", false, "pre-register the query for fast routing instead of running it")
	batch := flag.Bool("batch", false, "treat the argument as a ';'-separated workload and submit it for MQO scheduling")
	timeout := flag.Duration("timeout", 2*time.Minute, "wall-clock deadline for the call (0 = no deadline)")
	epsilon := flag.Float64("epsilon", 0, "derive the deadline from the report's value horizon: give up once IV would fall below this (0 = off)")
	lambdaCL := flag.Float64("lambda-cl", .01, "computational-latency discount rate used for the -epsilon horizon")
	timescale := flag.Float64("timescale", 1.0/60, "experiment minutes per wall second for the -epsilon horizon (must match the server)")
	flag.Parse()

	deadline, err := callDeadline(*timeout, *epsilon, *value, *lambdaCL, *timescale)
	if err == nil {
		err = run(*addr, *value, *status, *showMetrics, *remote, *register, *batch, deadline, strings.Join(flag.Args(), " "))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivqp:", err)
		os.Exit(1)
	}
}

// callDeadline folds -timeout and the optional -epsilon value horizon into
// one wall-clock budget. The horizon is client-side insurance: even when the
// server does no shedding, the call abandons work that can no longer reach
// the threshold. Zero means no deadline.
func callDeadline(timeout time.Duration, epsilon, value, lambdaCL, timescale float64) (time.Duration, error) {
	d := timeout
	if epsilon > 0 {
		if timescale <= 0 {
			return 0, fmt.Errorf("-timescale must be positive when -epsilon is set")
		}
		rates := core.DiscountRates{CL: lambdaCL}
		if err := rates.Validate(); err != nil {
			return 0, err
		}
		minutes := core.ToleratedCL(value, epsilon, rates)
		wall := time.Duration(minutes / timescale * float64(time.Second))
		if wall <= 0 {
			return 0, fmt.Errorf("value %g is already below -epsilon %g: the report would be worthless", value, epsilon)
		}
		if d == 0 || wall < d {
			d = wall
		}
	}
	return d, nil
}

// callCtx returns a context carrying the deadline (Background when zero).
func callCtx(deadline time.Duration) (context.Context, context.CancelFunc) {
	if deadline <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), deadline)
}

func run(addr string, value float64, status, showMetrics, remote, register, batch bool, deadline time.Duration, sql string) error {
	if batch {
		return runBatch(addr, value, deadline, sql)
	}
	if register {
		if strings.TrimSpace(sql) == "" {
			return fmt.Errorf("no SQL given to register")
		}
		if _, err := netproto.Call(addr, &netproto.Request{
			Kind: netproto.KindRegister, SQL: sql, BusinessValue: value,
		}, 30*time.Second); err != nil {
			return err
		}
		fmt.Println("registered: plans pre-calculated for routing")
		return nil
	}
	if showMetrics {
		resp, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindMetrics}, 5*time.Second)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(resp.Metrics))
		for name := range resp.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-28s %g\n", name, resp.Metrics[name])
		}
		return nil
	}
	if status {
		resp, err := netproto.Call(addr, &netproto.Request{Kind: netproto.KindStatus}, 5*time.Second)
		if err != nil {
			return err
		}
		if len(resp.Sites) > 0 {
			fmt.Printf("%-5s %-22s %-10s %s\n", "SITE", "ADDR", "BREAKER", "CONSEC FAILURES")
			for _, st := range resp.Sites {
				fmt.Printf("%-5d %-22s %-10s %d\n", st.Site, st.Addr, st.Breaker, st.ConsecutiveFailures)
			}
			fmt.Println()
		}
		fmt.Printf("%-16s %-5s %-12s %-16s %-12s %-11s %-10s %s\n",
			"TABLE", "SITE", "LAST SYNC", "STALENESS (min)", "PERIOD (min)", "NEXT SYNC", "SYNC AGE", "CURSOR")
		for _, r := range resp.Replicas {
			// Live-cadence columns read "-" until the sync engine reports.
			next, age := "-", "-"
			if r.NextSyncMinutes >= 0 {
				next = fmt.Sprintf("%.2f", r.NextSyncMinutes)
			}
			if r.LastSyncAgeMinutes >= 0 {
				age = fmt.Sprintf("%.2f", r.LastSyncAgeMinutes)
			}
			fmt.Printf("%-16s %-5d %-12.2f %-16.2f %-12.2f %-11s %-10s %d\n",
				r.Table, r.Site, r.LastSyncMinutes, r.StalenessMinutes, r.PeriodMinutes, next, age, r.Cursor)
		}
		if len(resp.Views) > 0 {
			fmt.Println()
			fmt.Printf("%-16s %-14s %-10s %-5s %-12s %-16s %-12s %-11s %-6s %s\n",
				"VIEW", "QUERY", "TABLE", "SITE", "LAST SYNC", "STALENESS (min)", "PERIOD (min)", "NEXT SYNC", "ROWS", "CURSOR")
			for _, v := range resp.Views {
				// A demoted (never- or no-longer-materialized) view reads "-".
				last, stale, next := "-", "-", "-"
				if v.LastSyncMinutes >= 0 {
					last = fmt.Sprintf("%.2f", v.LastSyncMinutes)
					stale = fmt.Sprintf("%.2f", v.StalenessMinutes)
				}
				if v.NextSyncMinutes >= 0 {
					next = fmt.Sprintf("%.2f", v.NextSyncMinutes)
				}
				fmt.Printf("%-16s %-14s %-10s %-5d %-12s %-16s %-12.2f %-11s %-6d %d\n",
					v.View, v.QueryID, v.Table, v.Site, last, stale, v.PeriodMinutes, next, v.Rows, v.Cursor)
			}
		}
		if len(resp.Metrics) > 0 {
			fmt.Println()
			fmt.Println("SCHEDULER")
			names := make([]string, 0, len(resp.Metrics))
			for name := range resp.Metrics {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("  %-32s %g\n", name, resp.Metrics[name])
			}
		}
		return nil
	}
	if strings.TrimSpace(sql) == "" {
		return fmt.Errorf("no SQL given (pass it as the final argument)")
	}
	req := &netproto.Request{Kind: netproto.KindExec, SQL: sql, BusinessValue: value}
	ctx, cancel := callCtx(deadline)
	defer cancel()
	start := time.Now()
	resp, err := netproto.CallContext(ctx, addr, req, 5*time.Minute)
	if err != nil {
		var remoteErr *netproto.RemoteError
		switch {
		case errors.As(err, &remoteErr) && remoteErr.Expired:
			return fmt.Errorf("EXPIRED: %w", err)
		case errors.Is(err, context.DeadlineExceeded):
			return fmt.Errorf("EXPIRED: no report within the %v budget: %w", deadline, err)
		}
		return err
	}
	elapsed := time.Since(start)

	printTable(resp.Result)
	if !remote && resp.Meta != nil {
		fmt.Printf("\nplan: %s\n", resp.Meta.PlanSignature)
		fmt.Printf("CL = %.2f min, SL = %.2f min, information value = %.4f (wall %v)\n",
			resp.Meta.CLMinutes, resp.Meta.SLMinutes, resp.Meta.Value, elapsed.Round(time.Millisecond))
		if resp.Meta.Degraded {
			fmt.Println("DEGRADED: a base site was down; the report used local replicas (SL reflects their true staleness)")
		}
	}
	return nil
}

func printTable(t *relation.Table) {
	if t == nil {
		return
	}
	widths := make([]int, t.Schema.Arity())
	for i, c := range t.Schema.Cols {
		widths[i] = len(c.Name)
	}
	rendered := make([][]string, len(t.Rows))
	for ri, row := range t.Rows {
		rendered[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			rendered[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range t.Schema.Cols {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("%-*s", widths[i], strings.ToUpper(c.Name))
	}
	fmt.Println()
	for _, row := range rendered {
		for i, cell := range row {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%-*s", widths[i], cell)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", t.NumRows())
}

// runBatch submits a ';'-separated workload for multi-query-optimized
// execution and prints each member's result and IV accounting.
func runBatch(addr string, value float64, deadline time.Duration, sql string) error {
	var queries []netproto.BatchQuery
	for _, part := range strings.Split(sql, ";") {
		if q := strings.TrimSpace(part); q != "" {
			queries = append(queries, netproto.BatchQuery{SQL: q, BusinessValue: value})
		}
	}
	if len(queries) == 0 {
		return fmt.Errorf("no queries in batch (separate with ';')")
	}
	ctx, cancel := callCtx(deadline)
	defer cancel()
	start := time.Now()
	resp, err := netproto.CallContext(ctx, addr, &netproto.Request{Kind: netproto.KindBatch, Batch: queries}, 10*time.Minute)
	if err != nil {
		return err
	}
	if resp.MQOFallback {
		fmt.Println("MQO FALLBACK: workload ordering failed; the batch ran in submission order")
	}
	var total float64
	for i, item := range resp.Batch {
		fmt.Printf("--- query %d ---\n", i+1)
		if item.Err != "" {
			switch {
			case strings.Contains(item.Err, "value expired"):
				fmt.Printf("EXPIRED: %s\n", item.Err)
			case item.Degraded:
				fmt.Printf("DEGRADED ERROR: %s\n", item.Err)
			default:
				fmt.Printf("ERROR: %s\n", item.Err)
			}
			continue
		}
		printTable(item.Result)
		fmt.Printf("plan: %s\nCL = %.2f min, SL = %.2f min, IV = %.4f\n",
			item.Meta.PlanSignature, item.Meta.CLMinutes, item.Meta.SLMinutes, item.Meta.Value)
		if item.Degraded {
			fmt.Println("DEGRADED: answered from local replicas because a base site was down")
		}
		total += item.Meta.Value
	}
	fmt.Printf("\nworkload: %d queries, total IV %.4f (wall %v)\n",
		len(resp.Batch), total, time.Since(start).Round(time.Millisecond))
	return nil
}
