// Command ivqp-bench regenerates the paper's evaluation figures (5–9) and
// the ablation studies as text tables.
//
// Usage:
//
//	ivqp-bench                 # run everything at paper scale
//	ivqp-bench -fig 5          # one experiment: 5, 6, 7, 8, 9a, 9b, tables,
//	                           # search, mqo, aging, advisor, sync, load,
//	                           # scenario, exec, ivm
//	ivqp-bench -quick          # scaled-down configs (CI-sized)
//	ivqp-bench -seed 7         # change the experiment seed
//	ivqp-bench -fig load -epsilon 0.25   # admission-control load run;
//	                           # writes machine-readable BENCH_<date>.json
//	ivqp-bench -fig scenario             # the whole named-scenario matrix;
//	                           # writes BENCH_SCENARIOS_<date>.json
//	ivqp-bench -fig scenario -scenario flash-zipf   # one named scenario
//	ivqp-bench -fig exec                 # tree-walk vs compiled-VM engine
//	                           # comparison (throughput + scenario IV);
//	                           # writes BENCH_EXEC_<date>.json
//	ivqp-bench -fig ivm                  # materialized views: replica-only
//	                           # vs view-enabled on an aggregate-heavy skew;
//	                           # writes BENCH_IVM_<date>.json
//	ivqp-bench -profile prof/  # capture cpu.pprof + heap.pprof for the run
//	ivqp-bench -compare base.json new.json          # regression gate: exit
//	                           # non-zero on >threshold total-IV drop per
//	                           # scenario (default 5%)
//	ivqp-bench -timeout 10m    # abort the sweep past a wall-clock budget
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ivdss/internal/bench"
	"ivdss/internal/synth"
)

// options bundles the CLI knobs run consumes.
type options struct {
	Fig      string
	Quick    bool
	Seed     int64
	CSVDir   string
	Epsilon  float64
	Timeout  time.Duration
	Out      string
	Scenario string // restrict -fig scenario to one named preset
	Profile  string // directory receiving cpu.pprof and heap.pprof
}

func main() {
	fig := flag.String("fig", "all", "experiment to run: 5, 6, 7, 8, 9a, 9b, tables, search, mqo, aging, advisor, sync, load, scenario, exec, ivm, cluster, or all")
	quick := flag.Bool("quick", false, "use scaled-down configurations")
	seed := flag.Int64("seed", 1, "experiment seed")
	csvDir := flag.String("csv", "", "also write each result table as CSV into this directory")
	epsilon := flag.Float64("epsilon", 0.25, "value-expiry threshold for the load experiment (0 disables shedding)")
	timeout := flag.Duration("timeout", 0, "abort the sweep once this wall-clock budget is spent (0 = unlimited)")
	out := flag.String("out", "", "path for the load/scenario experiment's JSON result (default BENCH_<date>.json / BENCH_SCENARIOS_<date>.json)")
	scenario := flag.String("scenario", "", "run only this named scenario preset (with -fig scenario)")
	profile := flag.String("profile", "", "write cpu.pprof and heap.pprof for the run into this directory")
	compare := flag.String("compare", "", "baseline scenario-suite JSON; pass the candidate JSON as the positional argument to diff instead of running experiments")
	threshold := flag.Float64("threshold", bench.DefaultIVDropThreshold, "fractional per-scenario total-IV drop tolerated by -compare")
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "ivqp-bench: -compare needs exactly one candidate JSON argument: ivqp-bench -compare baseline.json candidate.json")
			os.Exit(2)
		}
		regressed, err := runCompare(*compare, flag.Arg(0), *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ivqp-bench:", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	err := run(options{
		Fig:      *fig,
		Quick:    *quick,
		Seed:     *seed,
		CSVDir:   *csvDir,
		Epsilon:  *epsilon,
		Timeout:  *timeout,
		Out:      *out,
		Scenario: *scenario,
		Profile:  *profile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivqp-bench:", err)
		os.Exit(1)
	}
}

// runCompare diffs a candidate suite against a baseline and reports every
// regression; the boolean says whether the gate should fail.
func runCompare(baselinePath, candidatePath string, threshold float64, w io.Writer) (bool, error) {
	regs, err := bench.CompareSuiteFiles(baselinePath, candidatePath, threshold)
	if err != nil {
		return false, err
	}
	if len(regs) == 0 {
		fmt.Fprintf(w, "ok: no scenario lost more than %.1f%% total IV versus %s\n", threshold*100, baselinePath)
		return false, nil
	}
	fmt.Fprintf(w, "REGRESSION: %d scenario(s) exceed the %.1f%% total-IV drop threshold:\n", len(regs), threshold*100)
	for _, r := range regs {
		fmt.Fprintf(w, "  %s\n", r)
	}
	return true, nil
}

func run(o options) error {
	ran := false
	start := time.Now()

	if o.Profile != "" {
		if err := os.MkdirAll(o.Profile, 0o755); err != nil {
			return err
		}
		cpuFile, err := os.Create(filepath.Join(o.Profile, "cpu.pprof"))
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			cpuFile.Close()
			heapFile, err := os.Create(filepath.Join(o.Profile, "heap.pprof"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "ivqp-bench: heap profile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(heapFile); err != nil {
				fmt.Fprintln(os.Stderr, "ivqp-bench: heap profile:", err)
			}
			heapFile.Close()
			fmt.Printf("wrote %s and %s\n",
				filepath.Join(o.Profile, "cpu.pprof"), filepath.Join(o.Profile, "heap.pprof"))
		}()
	}

	// The sweep checks the budget between experiments: a single experiment
	// is never interrupted, so results that do print are always complete.
	want := func(name string) bool {
		if o.Timeout > 0 && time.Since(start) > o.Timeout {
			return false
		}
		return o.Fig == "all" || strings.EqualFold(o.Fig, name)
	}
	// Every figure runs on its own name-derived sub-seed, so the streams
	// one figure draws are independent of which other figures ran.
	figSeed := func(name string) int64 { return bench.FigSeed(o.Seed, name) }

	if o.CSVDir != "" {
		if err := os.MkdirAll(o.CSVDir, 0o755); err != nil {
			return err
		}
	}
	emit := func(tables []bench.Table) {
		for _, t := range tables {
			fmt.Println(t.Render())
			if o.CSVDir != "" {
				if err := writeCSV(o.CSVDir, t); err != nil {
					fmt.Fprintln(os.Stderr, "ivqp-bench: csv:", err)
				}
			}
		}
		ran = true
	}

	if want("5") {
		cfg := bench.DefaultFig5Config()
		if o.Quick {
			cfg = bench.QuickFig5Config()
		}
		cfg.Seed = figSeed("5")
		res, err := bench.RunFig5(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("6") {
		cfg := bench.DefaultFig6Config()
		cfg.Seed = figSeed("6")
		res, err := bench.RunFig6(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("7") {
		cfg := bench.DefaultFig7Config()
		cfg.Seed = figSeed("7")
		res, err := bench.RunFig7(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("8") {
		cfg := bench.DefaultFig8Config()
		if o.Quick {
			cfg = bench.QuickFig8Config()
		}
		cfg.Seed = figSeed("8")
		res, err := bench.RunFig8(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("9a") || want("9") {
		cfg := bench.DefaultFig9Config()
		if o.Quick {
			cfg = bench.QuickFig9Config()
		}
		cfg.Seed = figSeed("9a")
		res, err := bench.RunFig9a(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("9b") || want("9") {
		cfg := bench.DefaultFig9Config()
		if o.Quick {
			cfg = bench.QuickFig9Config()
		}
		cfg.Seed = figSeed("9b")
		res, err := bench.RunFig9b(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("search") {
		cfg := bench.DefaultAblationSearchConfig()
		if o.Quick {
			cfg.Scenarios = 50
		}
		cfg.Seed = figSeed("search")
		res, err := bench.RunAblationSearch(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("mqo") {
		cfg := bench.DefaultAblationMQOConfig()
		if o.Quick {
			cfg.WorkloadSize = 5
		}
		cfg.Seed = figSeed("mqo")
		res, err := bench.RunAblationMQO(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("tables") {
		cfg := bench.DefaultTablesSweepConfig()
		if o.Quick {
			cfg.TableCounts = []int{10, 100}
			cfg.NQueries = 30
		}
		cfg.Seed = figSeed("tables")
		res, err := bench.RunTablesSweep(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("advisor") {
		cfg := bench.DefaultAdvisorConfig()
		if o.Quick {
			cfg.NQueries = 30
			cfg.RandomTrials = 3
		}
		cfg.Seed = figSeed("advisor")
		res, err := bench.RunAdvisor(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("aging") {
		cfg := bench.DefaultAblationAgingConfig()
		if o.Quick {
			cfg.NQueries = 30
		}
		cfg.Seed = figSeed("aging")
		res, err := bench.RunAblationAging(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}

	if want("sync") {
		cfg := bench.DefaultSyncConfig()
		if o.Quick {
			cfg = bench.QuickSyncConfig()
		}
		cfg.Seed = figSeed("sync")
		res, err := bench.RunSync(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}

	if want("load") {
		cfg := bench.DefaultLoadConfig()
		if o.Quick {
			cfg = bench.QuickLoadConfig()
		}
		cfg.Seed = figSeed("load")
		cfg.Epsilon = o.Epsilon
		res, err := bench.RunLoad(cfg)
		if err != nil {
			return err
		}
		res.Date = time.Now().Format("2006-01-02")
		emit(res.Tables())
		path := o.Out
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", res.Date)
		}
		if err := writeFile(path, res.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}

	if want("scenario") {
		scenarios := synth.Presets()
		if o.Scenario != "" {
			sc, err := synth.Preset(o.Scenario)
			if err != nil {
				return err
			}
			scenarios = []synth.Scenario{sc}
		}
		suite, err := bench.RunScenarios(scenarios, o.Quick, o.Seed)
		if err != nil {
			return err
		}
		suite.Date = time.Now().Format("2006-01-02")
		emit(suite.Tables())
		path := o.Out
		if path == "" {
			path = fmt.Sprintf("BENCH_SCENARIOS_%s.json", suite.Date)
		}
		if err := writeFile(path, suite.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}

	if want("exec") {
		cfg := bench.DefaultExecConfig()
		if o.Quick {
			cfg = bench.QuickExecConfig()
		}
		cfg.Seed = figSeed("exec")
		res, err := bench.RunExec(context.Background(), cfg)
		if err != nil {
			return err
		}
		res.Date = time.Now().Format("2006-01-02")
		emit(res.Tables())
		path := o.Out
		if path == "" {
			path = fmt.Sprintf("BENCH_EXEC_%s.json", res.Date)
		}
		if err := writeFile(path, res.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}

	if want("ivm") {
		cfg := bench.DefaultIVMConfig()
		if o.Quick {
			cfg = bench.QuickIVMConfig()
		}
		cfg.Seed = figSeed("ivm")
		res, err := bench.RunIVM(cfg)
		if err != nil {
			return err
		}
		res.Date = time.Now().Format("2006-01-02")
		emit(res.Tables())
		path := o.Out
		if path == "" {
			path = fmt.Sprintf("BENCH_IVM_%s.json", res.Date)
		}
		if err := writeFile(path, res.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		// The run doubles as CI's IVM gate: materialized views must not
		// lose total IV, and must strictly cut sync traffic.
		if res.ViewEnabled.TotalIV < res.ReplicaOnly.TotalIV {
			return fmt.Errorf("ivm gate: view-enabled total IV %.3f fell below replica-only %.3f",
				res.ViewEnabled.TotalIV, res.ReplicaOnly.TotalIV)
		}
		if res.ViewEnabled.SyncBytes >= res.ReplicaOnly.SyncBytes {
			return fmt.Errorf("ivm gate: view-enabled sync bytes %.0f not below replica-only %.0f",
				res.ViewEnabled.SyncBytes, res.ReplicaOnly.SyncBytes)
		}
	}

	if want("cluster") {
		res, err := bench.RunClusterFig(figSeed("cluster"), o.Quick)
		if err != nil {
			return err
		}
		res.Date = time.Now().Format("2006-01-02")
		emit(res.Tables())
		fmt.Printf("cluster gates: IV scaling 1→4 shards %.2fx (need ≥ 1.70), 1-shard twin delta %.3f%% (need ≤ 1%%)\n",
			res.ScalingIV14, res.TwinDeltaPct)
		path := o.Out
		if path == "" {
			path = fmt.Sprintf("BENCH_CLUSTER_%s.json", res.Date)
		}
		if err := writeFile(path, res.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		// The run doubles as CI's cluster gate: total IV must scale ≥1.7x
		// from 1 to 4 shards at fixed per-shard resources, and the 1-shard
		// cluster must match the standalone engine within 1%.
		if res.ScalingIV14 < 1.7 {
			return fmt.Errorf("cluster gate: total IV scaled only %.2fx from 1 to 4 shards (need ≥ 1.7x)", res.ScalingIV14)
		}
		if res.TwinDeltaPct > 1 {
			return fmt.Errorf("cluster gate: 1-shard cluster diverges %.2f%% from the standalone engine (need ≤ 1%%)", res.TwinDeltaPct)
		}
	}

	if o.Timeout > 0 && time.Since(start) > o.Timeout {
		if !ran {
			return fmt.Errorf("wall-clock budget %v spent before any experiment could run", o.Timeout)
		}
		fmt.Fprintf(os.Stderr, "ivqp-bench: stopped after %v: wall-clock budget %v spent\n",
			time.Since(start).Round(time.Millisecond), o.Timeout)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want 5, 6, 7, 8, 9a, 9b, tables, search, mqo, aging, advisor, sync, load, scenario, exec, ivm, cluster, or all)", o.Fig)
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeFile creates path and streams write into it, treating a close
// failure as a write error (buffered bytes may be lost).
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	writeErr := write(f)
	if closeErr := f.Close(); writeErr == nil {
		writeErr = closeErr
	}
	return writeErr
}

// writeCSV stores one result table as <slug>.csv in dir.
func writeCSV(dir string, t bench.Table) error {
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, t.Title)
	slug = strings.Trim(strings.Join(strings.FieldsFunc(slug, func(r rune) bool { return r == '-' }), "-"), "-")
	if len(slug) > 60 {
		slug = slug[:60]
	}
	f, err := os.Create(filepath.Join(dir, slug+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	writeErr := func() error {
		if err := w.Write(t.Columns); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := w.Write(row); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	}()
	// A close failure on a written file can mean lost buffered bytes, so
	// it is a write error unless one already happened.
	if closeErr := f.Close(); writeErr == nil {
		writeErr = closeErr
	}
	return writeErr
}
