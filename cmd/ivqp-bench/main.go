// Command ivqp-bench regenerates the paper's evaluation figures (5–9) and
// the ablation studies as text tables.
//
// Usage:
//
//	ivqp-bench                 # run everything at paper scale
//	ivqp-bench -fig 5          # one experiment: 5, 6, 7, 8, 9a, 9b, tables,
//	                           # search, mqo, aging, advisor, sync, load
//	ivqp-bench -quick          # scaled-down configs (CI-sized)
//	ivqp-bench -seed 7         # change the experiment seed
//	ivqp-bench -fig load -epsilon 0.25   # admission-control load run;
//	                           # writes machine-readable BENCH_<date>.json
//	ivqp-bench -timeout 10m    # abort the sweep past a wall-clock budget
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ivdss/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run: 5, 6, 7, 8, 9a, 9b, tables, search, mqo, aging, advisor, sync, load, or all")
	quick := flag.Bool("quick", false, "use scaled-down configurations")
	seed := flag.Int64("seed", 1, "experiment seed")
	csvDir := flag.String("csv", "", "also write each result table as CSV into this directory")
	epsilon := flag.Float64("epsilon", 0.25, "value-expiry threshold for the load experiment (0 disables shedding)")
	timeout := flag.Duration("timeout", 0, "abort the sweep once this wall-clock budget is spent (0 = unlimited)")
	out := flag.String("out", "", "path for the load experiment's JSON result (default BENCH_<date>.json)")
	flag.Parse()

	if err := run(*fig, *quick, *seed, *csvDir, *epsilon, *timeout, *out); err != nil {
		fmt.Fprintln(os.Stderr, "ivqp-bench:", err)
		os.Exit(1)
	}
}

func run(fig string, quick bool, seed int64, csvDir string, epsilon float64, timeout time.Duration, out string) error {
	ran := false
	start := time.Now()
	// The sweep checks the budget between experiments: a single experiment
	// is never interrupted, so results that do print are always complete.
	want := func(name string) bool {
		if timeout > 0 && time.Since(start) > timeout {
			return false
		}
		return fig == "all" || strings.EqualFold(fig, name)
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	emit := func(tables []bench.Table) {
		for _, t := range tables {
			fmt.Println(t.Render())
			if csvDir != "" {
				if err := writeCSV(csvDir, t); err != nil {
					fmt.Fprintln(os.Stderr, "ivqp-bench: csv:", err)
				}
			}
		}
		ran = true
	}

	if want("5") {
		cfg := bench.DefaultFig5Config()
		if quick {
			cfg = bench.QuickFig5Config()
		}
		cfg.Seed = seed
		res, err := bench.RunFig5(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("6") {
		cfg := bench.DefaultFig6Config()
		cfg.Seed = seed
		res, err := bench.RunFig6(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("7") {
		cfg := bench.DefaultFig7Config()
		cfg.Seed = seed
		res, err := bench.RunFig7(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("8") {
		cfg := bench.DefaultFig8Config()
		if quick {
			cfg = bench.QuickFig8Config()
		}
		cfg.Seed = seed
		res, err := bench.RunFig8(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("9a") || want("9") {
		cfg := bench.DefaultFig9Config()
		if quick {
			cfg = bench.QuickFig9Config()
		}
		cfg.Seed = seed
		res, err := bench.RunFig9a(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("9b") || want("9") {
		cfg := bench.DefaultFig9Config()
		if quick {
			cfg = bench.QuickFig9Config()
		}
		cfg.Seed = seed
		res, err := bench.RunFig9b(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("search") {
		cfg := bench.DefaultAblationSearchConfig()
		if quick {
			cfg.Scenarios = 50
		}
		cfg.Seed = seed
		res, err := bench.RunAblationSearch(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("mqo") {
		cfg := bench.DefaultAblationMQOConfig()
		if quick {
			cfg.WorkloadSize = 5
		}
		cfg.Seed = seed
		res, err := bench.RunAblationMQO(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("tables") {
		cfg := bench.DefaultTablesSweepConfig()
		if quick {
			cfg.TableCounts = []int{10, 100}
			cfg.NQueries = 30
		}
		cfg.Seed = seed
		res, err := bench.RunTablesSweep(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("advisor") {
		cfg := bench.DefaultAdvisorConfig()
		if quick {
			cfg.NQueries = 30
			cfg.RandomTrials = 3
		}
		cfg.Seed = seed
		res, err := bench.RunAdvisor(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}
	if want("aging") {
		cfg := bench.DefaultAblationAgingConfig()
		if quick {
			cfg.NQueries = 30
		}
		cfg.Seed = seed
		res, err := bench.RunAblationAging(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}

	if want("sync") {
		cfg := bench.DefaultSyncConfig()
		if quick {
			cfg = bench.QuickSyncConfig()
		}
		cfg.Seed = seed
		res, err := bench.RunSync(cfg)
		if err != nil {
			return err
		}
		emit(res.Tables())
	}

	if want("load") {
		cfg := bench.DefaultLoadConfig()
		if quick {
			cfg = bench.QuickLoadConfig()
		}
		cfg.Seed = seed
		cfg.Epsilon = epsilon
		res, err := bench.RunLoad(cfg)
		if err != nil {
			return err
		}
		res.Date = time.Now().Format("2006-01-02")
		emit(res.Tables())
		path := out
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", res.Date)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		writeErr := res.WriteJSON(f)
		if closeErr := f.Close(); writeErr == nil {
			writeErr = closeErr
		}
		if writeErr != nil {
			return writeErr
		}
		fmt.Printf("wrote %s\n", path)
	}

	if timeout > 0 && time.Since(start) > timeout {
		if !ran {
			return fmt.Errorf("wall-clock budget %v spent before any experiment could run", timeout)
		}
		fmt.Fprintf(os.Stderr, "ivqp-bench: stopped after %v: wall-clock budget %v spent\n",
			time.Since(start).Round(time.Millisecond), timeout)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want 5, 6, 7, 8, 9a, 9b, tables, search, mqo, aging, advisor, load, or all)", fig)
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeCSV stores one result table as <slug>.csv in dir.
func writeCSV(dir string, t bench.Table) error {
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, t.Title)
	slug = strings.Trim(strings.Join(strings.FieldsFunc(slug, func(r rune) bool { return r == '-' }), "-"), "-")
	if len(slug) > 60 {
		slug = slug[:60]
	}
	f, err := os.Create(filepath.Join(dir, slug+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	writeErr := func() error {
		if err := w.Write(t.Columns); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := w.Write(row); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	}()
	// A close failure on a written file can mean lost buffered bytes, so
	// it is a write error unless one already happened.
	if closeErr := f.Close(); writeErr == nil {
		writeErr = closeErr
	}
	return writeErr
}
