package main

import (
	"os"
	"path/filepath"
	"testing"

	"ivdss/internal/bench"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", true, 1, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAgingQuickWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("aging", true, 1, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || filepath.Ext(entries[0].Name()) != ".csv" {
		t.Errorf("csv dir = %v", entries)
	}
}

func TestWriteCSVSlug(t *testing.T) {
	dir := t.TempDir()
	tbl := bench.Table{
		Title:   "Figure 5: Information Value (Fq:Fs = 1:20)!!",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
	}
	if err := writeCSV(dir, tbl); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
	name := entries[0].Name()
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '.') {
			t.Errorf("slug %q contains %q", name, r)
		}
	}
}
