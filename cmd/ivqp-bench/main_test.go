package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ivdss/internal/bench"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", true, 1, "", .25, 0, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAgingQuickWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("aging", true, 1, dir, .25, 0, ""); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || filepath.Ext(entries[0].Name()) != ".csv" {
		t.Errorf("csv dir = %v", entries)
	}
}

func TestRunLoadWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run("load", true, 1, "", .25, 0, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res bench.LoadResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.Completed == 0 || res.Date == "" {
		t.Errorf("result incomplete: %+v", res)
	}
	if res.Completed+res.Shed != res.Queries {
		t.Errorf("completed %d + shed %d != %d", res.Completed, res.Shed, res.Queries)
	}
}

func TestRunTimeoutBudget(t *testing.T) {
	// A budget that is already spent before the first experiment: the
	// sweep refuses to start rather than running past its deadline.
	if err := run("aging", true, 1, "", .25, time.Nanosecond, ""); err == nil {
		t.Error("exhausted budget still ran an experiment")
	}
}

func TestWriteCSVSlug(t *testing.T) {
	dir := t.TempDir()
	tbl := bench.Table{
		Title:   "Figure 5: Information Value (Fq:Fs = 1:20)!!",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
	}
	if err := writeCSV(dir, tbl); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
	name := entries[0].Name()
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '.') {
			t.Errorf("slug %q contains %q", name, r)
		}
	}
}
