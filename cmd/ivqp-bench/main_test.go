package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ivdss/internal/bench"
)

// opts builds a default options value for tests; fields are overridden by
// the mutators.
func opts(mut ...func(*options)) options {
	o := options{Fig: "aging", Quick: true, Seed: 1, Epsilon: .25}
	for _, m := range mut {
		m(&o)
	}
	return o
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(opts(func(o *options) { o.Fig = "nope" })); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAgingQuickWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(opts(func(o *options) { o.CSVDir = dir })); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || filepath.Ext(entries[0].Name()) != ".csv" {
		t.Errorf("csv dir = %v", entries)
	}
}

func TestRunLoadWritesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run(opts(func(o *options) { o.Fig = "load"; o.Out = path })); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res bench.LoadResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.Completed == 0 || res.Date == "" {
		t.Errorf("result incomplete: %+v", res)
	}
	if res.Completed+res.Shed != res.Queries {
		t.Errorf("completed %d + shed %d != %d", res.Completed, res.Shed, res.Queries)
	}
}

func TestRunTimeoutBudget(t *testing.T) {
	// A budget that is already spent before the first experiment: the
	// sweep refuses to start rather than running past its deadline.
	if err := run(opts(func(o *options) { o.Timeout = time.Nanosecond })); err == nil {
		t.Error("exhausted budget still ran an experiment")
	}
}

// runScenarioSuite runs -fig scenario into a temp artifact and parses it.
func runScenarioSuite(t *testing.T, mut ...func(*options)) (string, bench.ScenarioSuiteResult) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "suite.json")
	o := opts(func(o *options) { o.Fig = "scenario"; o.Out = path })
	for _, m := range mut {
		m(&o)
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	suite, err := bench.ReadScenarioSuite(f)
	if err != nil {
		t.Fatal(err)
	}
	return path, suite
}

func TestRunScenarioWritesSuite(t *testing.T) {
	_, suite := runScenarioSuite(t)
	if len(suite.Scenarios) < 8 {
		t.Fatalf("suite holds %d scenarios, want the full matrix (>= 8)", len(suite.Scenarios))
	}
	if suite.Date == "" || !suite.Quick {
		t.Errorf("suite metadata incomplete: date %q quick %v", suite.Date, suite.Quick)
	}
	for _, s := range suite.Scenarios {
		if s.TotalIV <= 0 {
			t.Errorf("%s: no IV accrued", s.Name)
		}
	}
}

func TestRunScenarioSingle(t *testing.T) {
	_, suite := runScenarioSuite(t, func(o *options) { o.Scenario = "flash-zipf" })
	if len(suite.Scenarios) != 1 || suite.Scenarios[0].Name != "flash-zipf" {
		t.Fatalf("suite = %+v, want exactly flash-zipf", suite.Scenarios)
	}
	if err := run(opts(func(o *options) { o.Fig = "scenario"; o.Scenario = "nope" })); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestScenarioSuiteDeterministic pins the artifact the CI gate diffs:
// two runs with the same seed must produce identical scenario entries.
func TestScenarioSuiteDeterministic(t *testing.T) {
	_, a := runScenarioSuite(t)
	_, b := runScenarioSuite(t)
	if !reflect.DeepEqual(a.Scenarios, b.Scenarios) {
		t.Error("same seed produced different suite artifacts")
	}
}

func TestRunProfileWritesPprof(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prof")
	if err := run(opts(func(o *options) { o.Profile = dir })); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s missing: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

// TestCompareGateEndToEnd drives the real gate over real artifacts: the
// suite compared against itself passes, and a tampered copy with one
// scenario's total IV slashed fails.
func TestCompareGateEndToEnd(t *testing.T) {
	path, suite := runScenarioSuite(t)

	var sb strings.Builder
	regressed, err := runCompare(path, path, 0.05, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("suite regressed against itself:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "ok:") {
		t.Errorf("pass message missing: %q", sb.String())
	}

	// Tamper: slash one scenario's total IV by half.
	suite.Scenarios[0].TotalIV /= 2
	tampered := filepath.Join(t.TempDir(), "tampered.json")
	f, err := os.Create(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if err := suite.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	regressed, err = runCompare(path, tampered, 0.05, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("halved total IV passed the gate")
	}
	if !strings.Contains(sb.String(), suite.Scenarios[0].Name) {
		t.Errorf("regression report does not name the scenario: %q", sb.String())
	}

	// A missing artifact is an error, not a silent pass.
	if _, err := runCompare(path, filepath.Join(t.TempDir(), "absent.json"), 0.05, &sb); err == nil {
		t.Error("missing candidate artifact did not error")
	}
}

// TestFigSeedIndependence pins the shared-seed fix: every figure draws
// from its own name-derived sub-seed, all distinct from the base and from
// each other, and stable across calls.
func TestFigSeedIndependence(t *testing.T) {
	figs := []string{"5", "6", "7", "8", "9a", "9b", "tables", "search", "mqo", "aging", "advisor", "sync", "load"}
	const base = int64(1)
	seen := map[int64]string{base: "base"}
	for _, fig := range figs {
		s := bench.FigSeed(base, fig)
		if other, dup := seen[s]; dup {
			t.Errorf("figure %s shares seed %d with %s", fig, s, other)
		}
		seen[s] = fig
		if bench.FigSeed(base, fig) != s {
			t.Errorf("figure %s seed not stable", fig)
		}
		if bench.FigSeed(base+1, fig) == s {
			t.Errorf("figure %s seed ignores the base", fig)
		}
	}
}

func TestWriteCSVSlug(t *testing.T) {
	dir := t.TempDir()
	tbl := bench.Table{
		Title:   "Figure 5: Information Value (Fq:Fs = 1:20)!!",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
	}
	if err := writeCSV(dir, tbl); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
	name := entries[0].Name()
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '.') {
			t.Errorf("slug %q contains %q", name, r)
		}
	}
}
