package main

import (
	"testing"
	"time"
)

func TestParseReplicate(t *testing.T) {
	got, err := parseReplicate("customer=30s, nation=2m,region=1h")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got["customer"] != 30*time.Second || got["nation"] != 2*time.Minute {
		t.Errorf("parsed = %v", got)
	}
	if _, err := parseReplicate("customer"); err == nil {
		t.Error("missing period accepted")
	}
	if _, err := parseReplicate("customer=nope"); err == nil {
		t.Error("bad duration accepted")
	}
	empty, err := parseReplicate("")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty spec: %v %v", empty, err)
	}
}

func TestScenarioReplicate(t *testing.T) {
	// steady-zipf replicates 8 tables at a 120-experiment-minute cycle;
	// at timescale 10 (experiment minutes per wall second) that is 12s.
	plan, err := scenarioReplicate("steady-zipf", "customer,orders,lineitem", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("plan = %v, want 3 tables", plan)
	}
	if plan["customer"] != 12*time.Second {
		t.Errorf("period = %v, want 12s", plan["customer"])
	}
	// More names than the scenario's replica budget: only the first
	// (hottest) sc.Replicas survive.
	many := "t1,t2,t3,t4,t5,t6,t7,t8,t9,t10"
	plan, err = scenarioReplicate("steady-zipf", many, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 8 {
		t.Errorf("plan keeps %d tables, want the 8-replica budget", len(plan))
	}
	if _, ok := plan["t9"]; ok {
		t.Error("table beyond the replica budget kept")
	}
	if _, err := scenarioReplicate("nope", "customer", 10); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := scenarioReplicate("steady-zipf", "", 10); err == nil {
		t.Error("empty table list accepted")
	}
	if _, err := scenarioReplicate("steady-zipf", "customer", 0); err == nil {
		t.Error("zero timescale accepted")
	}
}

func TestRemoteFlags(t *testing.T) {
	r := remoteFlags{}
	if err := r.Set("1=127.0.0.1:7101"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("2=127.0.0.1:7102"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[1] != "127.0.0.1:7101" {
		t.Errorf("flags = %v", r)
	}
	for _, bad := range []string{"noequals", "x=addr", "0=addr", "-1=addr"} {
		if err := r.Set(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}
