package main

import (
	"testing"
	"time"
)

func TestParseReplicate(t *testing.T) {
	got, err := parseReplicate("customer=30s, nation=2m,region=1h")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got["customer"] != 30*time.Second || got["nation"] != 2*time.Minute {
		t.Errorf("parsed = %v", got)
	}
	if _, err := parseReplicate("customer"); err == nil {
		t.Error("missing period accepted")
	}
	if _, err := parseReplicate("customer=nope"); err == nil {
		t.Error("bad duration accepted")
	}
	empty, err := parseReplicate("")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty spec: %v %v", empty, err)
	}
}

func TestRemoteFlags(t *testing.T) {
	r := remoteFlags{}
	if err := r.Set("1=127.0.0.1:7101"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("2=127.0.0.1:7102"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[1] != "127.0.0.1:7101" {
		t.Errorf("flags = %v", r)
	}
	for _, bad := range []string{"noequals", "x=addr", "0=addr", "-1=addr"} {
		if err := r.Set(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}
