// Command ivqp-dss runs the local federation/DSS server: it discovers the
// tables served by each remote site, replicates a chosen subset locally on
// synchronization cycles, and answers client SQL with information-value-
// driven plans.
//
//	ivqp-dss -addr :7100 \
//	    -remote 1=127.0.0.1:7101 -remote 2=127.0.0.1:7102 \
//	    -replicate customer=30s,nation=2m,region=2m \
//	    -views "SELECT t_account, sum(t_amount) FROM trades GROUP BY t_account" \
//	    -lambda-cl 0.01 -lambda-sl 0.05 -timescale 10
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ivdss/internal/cluster"
	"ivdss/internal/core"
	"ivdss/internal/scheduler"
	"ivdss/internal/server"
	"ivdss/internal/sqlmini"
	"ivdss/internal/synth"
)

// viewFlags accumulates repeated -views SQL flags.
type viewFlags []string

func (v *viewFlags) String() string { return strings.Join(*v, "; ") }

func (v *viewFlags) Set(sql string) error {
	if strings.TrimSpace(sql) == "" {
		return fmt.Errorf("empty view SQL")
	}
	*v = append(*v, sql)
	return nil
}

// remoteFlags accumulates repeated -remote site=addr flags.
type remoteFlags map[core.SiteID]string

func (r remoteFlags) String() string { return fmt.Sprintf("%v", map[core.SiteID]string(r)) }

func (r remoteFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want site=addr, got %q", v)
	}
	site, err := strconv.Atoi(parts[0])
	if err != nil || site < 1 {
		return fmt.Errorf("invalid site id %q", parts[0])
	}
	r[core.SiteID(site)] = parts[1]
	return nil
}

// parsePeers parses the -peers spec: id=addr,...
func parsePeers(spec string) (map[int]string, error) {
	out := map[int]string{}
	if spec == "" {
		return out, nil
	}
	for _, item := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(item), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("want id=addr, got %q", item)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("invalid shard id %q", parts[0])
		}
		out[id] = parts[1]
	}
	return out, nil
}

// parseTenants parses the -tenants spec: name=weight,...
func parseTenants(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, item := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(item), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("want tenant=weight, got %q", item)
		}
		w, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("invalid weight for tenant %q", parts[0])
		}
		out[parts[0]] = w
	}
	return out, nil
}

func parseReplicate(spec string) (map[core.TableID]time.Duration, error) {
	out := map[core.TableID]time.Duration{}
	if spec == "" {
		return out, nil
	}
	for _, item := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(item), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("want table=period, got %q", item)
		}
		period, err := time.ParseDuration(parts[1])
		if err != nil {
			return nil, fmt.Errorf("period for %s: %w", parts[0], err)
		}
		out[core.TableID(strings.ToLower(parts[0]))] = period
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "listen address")
	remotes := remoteFlags{}
	flag.Var(remotes, "remote", "remote site as site=addr (repeatable)")
	replicate := flag.String("replicate", "", "replication plan as table=period,... (e.g. customer=30s,nation=2m)")
	views := viewFlags{}
	flag.Var(&views, "views", "materialized view SQL — a single-table aggregate the view answers (repeatable)")
	viewPeriod := flag.Duration("view-period", 0, "refresh period for every -views view (0 = default 10s); views share the -sync-budget with replicas")
	lambdaCL := flag.Float64("lambda-cl", .01, "computational-latency discount rate per experiment minute")
	lambdaSL := flag.Float64("lambda-sl", .01, "synchronization-latency discount rate per experiment minute")
	timescale := flag.Float64("timescale", 1.0/60, "experiment minutes per wall second (1/60 = real time)")
	calibration := flag.String("calibration", "", "JSON file to load learned plan costs from at startup and save to on shutdown")
	timeout := flag.Duration("timeout", 0, "deadline for each remote call (dial and per round trip; 0 = server default)")
	epsilon := flag.Float64("epsilon", 0, "value-expiry threshold: shed queries whose projected IV falls below it (0 = server default, negative disables)")
	workers := flag.Int("workers", 0, "execution worker pool size (0 = server default)")
	queue := flag.Int("queue", 0, "admission queue depth; arrivals beyond it are shed (0 = server default)")
	mqoWindow := flag.Duration("mqo-window", 0, "micro-batch window: hold ad hoc arrivals this long (wall clock) and schedule them as one MQO workload (0 = dispatch immediately)")
	agingCoeff := flag.Float64("aging", 0, "aging coefficient: boost queued queries by coeff*wait^exponent so low-value reports cannot starve (0 = off)")
	agingExp := flag.Float64("aging-exponent", 0, "aging exponent, must be > 1 (0 = default 1.5)")
	gaSeed := flag.Int64("ga-seed", 0, "GA ordering seed for batch/micro-batch MQO (0 = server default)")
	retrySeed := flag.Int64("retry-seed", 0, "seed for remote-call retry backoff jitter (0 = server default)")
	gaPopulation := flag.Int("ga-population", 0, "GA population size (0 = default 40)")
	gaGenerations := flag.Int("ga-generations", 0, "GA generations (0 = default 50)")
	syncBudget := flag.Float64("sync-budget", 0, "replication bandwidth budget in bytes per wall second shared by all tables (0 = unlimited)")
	adaptiveSync := flag.Bool("adaptive-sync", false, "re-divide the sync budget by observed IV loss to staleness and review replica placement online")
	syncAdjust := flag.Duration("sync-adjust", 0, "cadence controller interval for -adaptive-sync (0 = default 10s)")
	scenario := flag.String("scenario", "", "derive the replication plan from this named scenario preset (see ivqp-bench -fig scenario); needs -scenario-tables")
	scenarioTables := flag.String("scenario-tables", "", "comma-separated live table names the -scenario replica budget draws from, hottest first")
	engine := flag.String("engine", "vm", "sqlmini execution engine: vm (compiled bytecode over columnar batches) or tree (reference tree-walk)")
	shards := flag.Int("shards", 0, "run N in-process front-end shards on consecutive ports starting at -addr; each replicates the slice of -replicate it owns under the cluster shard map")
	shardID := flag.Int("shard-id", 0, "this front-end's shard ID when clustering across processes (use with -peers)")
	peersSpec := flag.String("peers", "", "peer shards as id=addr,... for multi-process clustering (e.g. 1=127.0.0.1:7201,2=127.0.0.1:7202)")
	stealHighWater := flag.Int("steal-highwater", 0, "hand whole requests to the least-loaded covering peer once the local queue reaches this depth (0 = no work-stealing)")
	gossipInterval := flag.Duration("gossip-interval", 0, "mean gap between anti-entropy gossip rounds (0 = default 2s)")
	gossipSeed := flag.Int64("gossip-seed", 0, "seed for gossip round jitter and peer choice (0 = default 1)")
	tenants := flag.String("tenants", "", "tenant weights as name=weight,...: turns queue-full refusal into weighted fair shedding by IV per budget unit")
	flag.Parse()

	sqlEngine, err := sqlmini.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivqp-dss:", err)
		os.Exit(1)
	}
	tenantWeights, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivqp-dss:", err)
		os.Exit(1)
	}

	cfg := server.DSSConfig{
		Rates:           core.DiscountRates{CL: *lambdaCL, SL: *lambdaSL},
		TimeScale:       *timescale,
		RetrySeed:       *retrySeed,
		DialTimeout:     *timeout,
		Epsilon:         *epsilon,
		Workers:         *workers,
		QueueDepth:      *queue,
		MQOWindow:       *mqoWindow,
		Aging:           core.Aging{Coefficient: *agingCoeff, Exponent: *agingExp},
		GA:              scheduler.GAConfig{Seed: *gaSeed, Population: *gaPopulation, Generations: *gaGenerations},
		SyncBudget:      *syncBudget,
		AdaptiveSync:    *adaptiveSync,
		SyncAdjustEvery: *syncAdjust,
		SQLEngine:       sqlEngine,
		StealHighWater:  *stealHighWater,
		GossipInterval:  *gossipInterval,
		GossipSeed:      *gossipSeed,
		Tenants:         tenantWeights,
	}
	for _, sql := range views {
		cfg.Views = append(cfg.Views, server.ViewSpec{SQL: sql, Period: *viewPeriod})
	}
	if *shards > 1 {
		if *peersSpec != "" {
			fmt.Fprintln(os.Stderr, "ivqp-dss: -shards runs an in-process cluster; -peers is for multi-process mode, pick one")
			os.Exit(1)
		}
		if err := runCluster(*addr, *shards, remotes, *replicate, *scenario, *scenarioTables, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "ivqp-dss:", err)
			os.Exit(1)
		}
		return
	}
	if *peersSpec != "" {
		peers, err := parsePeers(*peersSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ivqp-dss:", err)
			os.Exit(1)
		}
		cfg.ShardID = *shardID
		cfg.Peers = peers
	}
	if err := run(*addr, remotes, *replicate, *scenario, *scenarioTables, cfg, *calibration); err != nil {
		fmt.Fprintln(os.Stderr, "ivqp-dss:", err)
		os.Exit(1)
	}
}

// runCluster starts N front-end shards inside one process on consecutive
// ports, each a full DSSServer wired to every remote site: shard i listens
// on -addr's port + i, replicates the tables it owns under the canonical
// cluster shard map, and gossips with the other N−1 shards. Clients route
// with the same shard map (ivqp-loadgen -shards does this).
func runCluster(addr string, n int, remotes remoteFlags, replicate, scenario, scenarioTables string, cfg server.DSSConfig) error {
	plan, err := parseReplicate(replicate)
	if err != nil {
		return err
	}
	if scenario != "" {
		if len(plan) > 0 {
			return fmt.Errorf("-scenario and -replicate both set: pick one replication plan source")
		}
		plan, err = scenarioReplicate(scenario, scenarioTables, cfg.TimeScale)
		if err != nil {
			return err
		}
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-shards needs -addr as host:port, got %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port <= 0 {
		return fmt.Errorf("-shards needs a numeric -addr port, got %q", portStr)
	}
	smap, err := cluster.NewShardMap(n)
	if err != nil {
		return err
	}
	tables := make([]core.TableID, 0, len(plan))
	for t := range plan {
		tables = append(tables, t)
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i] < tables[j] })

	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = net.JoinHostPort(host, strconv.Itoa(port+i))
	}
	var servers []*server.DSSServer
	defer func() {
		for _, dss := range servers {
			dss.Close()
		}
	}()
	for i := 0; i < n; i++ {
		scfg := cfg
		scfg.ShardID = i
		scfg.Peers = make(map[int]string, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				scfg.Peers[j] = addrs[j]
			}
		}
		scfg.Remotes = remotes
		scfg.Replicate = make(map[core.TableID]time.Duration)
		for _, t := range tables {
			if smap.Owner(t) == cluster.ShardID(i) {
				scfg.Replicate[t] = plan[t]
			}
		}
		dss, err := server.NewDSSServer(scfg)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		servers = append(servers, dss)
		bound, err := dss.Listen(addrs[i])
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		fmt.Printf("ivqp-dss: shard %d/%d on %s (%d replicas)\n", i, n, bound, len(scfg.Replicate))
	}
	fmt.Printf("ivqp-dss: %d-shard cluster up (%d remote sites, %d replicated tables, steal high water %d)\n",
		n, len(remotes), len(plan), cfg.StealHighWater)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("ivqp-dss: shutting down cluster")
	return nil
}

// scenarioReplicate derives a live replication plan from a scenario
// preset: the scenario's replica budget takes the first tables of the
// provided list (hottest first, the operator's call), each synchronized
// at the scenario's mean cycle scaled from experiment minutes to wall
// time — so a live cluster mirrors the deployment the DES benched.
func scenarioReplicate(name, tables string, timescale float64) (map[core.TableID]time.Duration, error) {
	sc, err := synth.Preset(name)
	if err != nil {
		return nil, err
	}
	if timescale <= 0 {
		return nil, fmt.Errorf("-timescale must be positive with -scenario")
	}
	var names []string
	for _, t := range strings.Split(tables, ",") {
		if t = strings.TrimSpace(t); t != "" {
			names = append(names, strings.ToLower(t))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-scenario %s needs -scenario-tables naming the live tables its %d replicas draw from", name, sc.Replicas)
	}
	if sc.Replicas < len(names) {
		names = names[:sc.Replicas]
	}
	period := time.Duration(sc.SyncMean / timescale * float64(time.Second))
	if period <= 0 {
		return nil, fmt.Errorf("scenario %s has no sync cycle (replicas %d, sync mean %v)", name, sc.Replicas, sc.SyncMean)
	}
	plan := make(map[core.TableID]time.Duration, len(names))
	for _, n := range names {
		plan[core.TableID(n)] = period
	}
	return plan, nil
}

func run(addr string, remotes remoteFlags, replicate, scenario, scenarioTables string, cfg server.DSSConfig, calibration string) error {
	plan, err := parseReplicate(replicate)
	if err != nil {
		return err
	}
	if scenario != "" {
		if len(plan) > 0 {
			return fmt.Errorf("-scenario and -replicate both set: pick one replication plan source")
		}
		plan, err = scenarioReplicate(scenario, scenarioTables, cfg.TimeScale)
		if err != nil {
			return err
		}
	}
	cfg.Remotes = remotes
	cfg.Replicate = plan
	dss, err := server.NewDSSServer(cfg)
	if err != nil {
		return err
	}
	if calibration != "" {
		if f, err := os.Open(calibration); err == nil {
			loadErr := dss.LoadCalibration(f)
			f.Close()
			if loadErr != nil {
				return loadErr
			}
			fmt.Printf("ivqp-dss: loaded %d calibrated plan configurations\n", dss.CalibrationLen())
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	bound, err := dss.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Printf("ivqp-dss: federation server on %s (%d remote sites, %d replicas, %d views, λcl=%g λsl=%g)\n",
		bound, len(remotes), len(plan), len(cfg.Views), cfg.Rates.CL, cfg.Rates.SL)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("ivqp-dss: shutting down")
	if calibration != "" {
		f, err := os.Create(calibration)
		if err != nil {
			return err
		}
		saveErr := dss.SaveCalibration(f)
		// A close failure can mean lost buffered bytes: the save did not
		// durably happen.
		if closeErr := f.Close(); saveErr == nil {
			saveErr = closeErr
		}
		if saveErr != nil {
			return saveErr
		}
		fmt.Printf("ivqp-dss: saved %d calibrated plan configurations\n", dss.CalibrationLen())
	}
	return dss.Close()
}
