// Command ivqp-remote runs a remote site server holding base tables.
//
// It can seed itself with a slice of the TPC-H schema so a multi-site
// federation can be assembled from several processes:
//
//	ivqp-remote -addr :7101 -tables customer,orders,nation,region
//	ivqp-remote -addr :7102 -tables lineitem,supplier,part,partsupp -scale 2
//
// Clients (the DSS server, or ivqp -remote) connect over TCP with the
// internal gob protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ivdss/internal/relation"
	"ivdss/internal/server"
	"ivdss/internal/tpch"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7101", "listen address")
	tables := flag.String("tables", "", "comma-separated TPC-H tables to serve (default: all eight)")
	scale := flag.Float64("scale", 1, "TPC-H generator scale")
	seed := flag.Int64("seed", 42, "TPC-H generator seed")
	delay := flag.Duration("delay", 0, "simulated WAN latency per scan/exec (e.g. 50ms)")
	load := flag.String("load", "", "directory of <table>.csv files to serve instead of generated TPC-H data")
	dump := flag.String("dump", "", "write the generated TPC-H tables as <table>.csv into this directory and exit")
	timeout := flag.Duration("timeout", 0, "server-side cap on each request's work; composes with the caller's wire deadline (0 = uncapped)")
	flag.Parse()

	if *dump != "" {
		if err := dumpCSV(*dump, *scale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "ivqp-remote:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*addr, *tables, *scale, *seed, *delay, *timeout, *load); err != nil {
		fmt.Fprintln(os.Stderr, "ivqp-remote:", err)
		os.Exit(1)
	}
}

func run(addr, tables string, scale float64, seed int64, delay, timeout time.Duration, load string) error {
	srv := server.NewRemoteServer()
	srv.SetScanDelay(delay)
	srv.SetRequestTimeout(timeout)
	if load != "" {
		if err := loadCSVDir(srv, load); err != nil {
			return err
		}
	} else {
		catalog, err := tpch.Generate(tpch.Config{Scale: scale, Seed: seed})
		if err != nil {
			return err
		}
		want := map[string]bool{}
		if tables == "" {
			for _, name := range tpch.TableNames() {
				want[name] = true
			}
		} else {
			for _, name := range strings.Split(tables, ",") {
				want[strings.ToLower(strings.TrimSpace(name))] = true
			}
		}
		for name := range want {
			t, ok := catalog[name]
			if !ok {
				return fmt.Errorf("unknown TPC-H table %q", name)
			}
			if err := srv.AddTable(t); err != nil {
				return err
			}
		}
	}

	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Printf("ivqp-remote: serving %v on %s\n", srv.Tables(), bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("ivqp-remote: shutting down")
	return srv.Close()
}

// dumpCSV generates the TPC-H catalog and writes each table as CSV.
func dumpCSV(dir string, scale float64, seed int64) error {
	catalog, err := tpch.Generate(tpch.Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, t := range catalog {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		writeErr := t.WriteCSV(f)
		closeErr := f.Close()
		if writeErr != nil {
			return fmt.Errorf("%s: %w", name, writeErr)
		}
		if closeErr != nil {
			return closeErr
		}
		fmt.Printf("ivqp-remote: wrote %s.csv (%d rows)\n", name, t.NumRows())
	}
	return nil
}

// loadCSVDir installs every <name>.csv in dir as table <name>.
func loadCSVDir(srv *server.RemoteServer, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		t, err := relation.ReadCSV(name, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		if err := srv.AddTable(t); err != nil {
			return err
		}
		loaded++
	}
	if loaded == 0 {
		return fmt.Errorf("no .csv files in %s", dir)
	}
	return nil
}
