// Command ivqp-workload replays a query workload against a live DSS server
// and reports measured information-value statistics — the load-generator
// side of a live deployment experiment.
//
//	# remotes seeded with TPC-H (see ivqp-remote), DSS on :7100
//	ivqp-workload -addr 127.0.0.1:7100 -n 60 -mean 300ms \
//	    -queries Q1,Q3,Q6,Q13,Q22 -value 1.0 -seed 1
//
// Arrivals follow an exponential process with the given mean gap; each
// arrival runs a randomly chosen template. The summary reports the IV,
// CL and SL distributions plus the plan mix the DSS chose.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/netproto"
	"ivdss/internal/stats"
	"ivdss/internal/tpch"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "DSS server address")
	n := flag.Int("n", 30, "number of queries to replay")
	mean := flag.Duration("mean", 300*time.Millisecond, "mean interarrival gap")
	queries := flag.String("queries", "Q1,Q6,Q13,Q22", "comma-separated TPC-H template IDs")
	value := flag.Float64("value", 1, "business value per report")
	seed := flag.Int64("seed", 1, "workload seed")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-query wall-clock deadline (0 = no deadline)")
	epsilon := flag.Float64("epsilon", 0, "tighten the per-query deadline to the value horizon: give up once IV would fall below this (0 = off)")
	lambdaCL := flag.Float64("lambda-cl", .01, "computational-latency discount rate used for the -epsilon horizon")
	timescale := flag.Float64("timescale", 1.0/60, "experiment minutes per wall second for the -epsilon horizon (must match the server)")
	flag.Parse()

	deadline, err := queryDeadline(*timeout, *epsilon, *value, *lambdaCL, *timescale)
	if err == nil {
		err = run(*addr, *n, *mean, *queries, *value, *seed, deadline)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivqp-workload:", err)
		os.Exit(1)
	}
}

// queryDeadline folds -timeout and the optional -epsilon value horizon into
// one per-query wall-clock budget; zero means no deadline.
func queryDeadline(timeout time.Duration, epsilon, value, lambdaCL, timescale float64) (time.Duration, error) {
	d := timeout
	if epsilon > 0 {
		if timescale <= 0 {
			return 0, fmt.Errorf("-timescale must be positive when -epsilon is set")
		}
		rates := core.DiscountRates{CL: lambdaCL}
		if err := rates.Validate(); err != nil {
			return 0, err
		}
		minutes := core.ToleratedCL(value, epsilon, rates)
		wall := time.Duration(minutes / timescale * float64(time.Second))
		if wall <= 0 {
			return 0, fmt.Errorf("value %g is already below -epsilon %g: every report would be worthless", value, epsilon)
		}
		if d == 0 || wall < d {
			d = wall
		}
	}
	return d, nil
}

func run(addr string, n int, mean time.Duration, queryList string, value float64, seed int64, deadline time.Duration) error {
	if n <= 0 {
		return fmt.Errorf("need a positive query count")
	}
	var templates []tpch.Query
	for _, id := range strings.Split(queryList, ",") {
		q, err := tpch.QueryByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		templates = append(templates, q)
	}
	if len(templates) == 0 {
		return fmt.Errorf("no query templates selected")
	}

	src := stats.NewSource(seed)
	// Transport-level retries against the DSS itself; remote errors are the
	// DSS's answer (possibly a typed degraded or expired refusal) and are
	// not retried, and neither is a spent per-query deadline.
	retrier := netproto.Retrier{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Millisecond,
		Budget:      2 * time.Second,
		Retryable: func(err error) bool {
			var remote *netproto.RemoteError
			return !errors.As(err, &remote) && !errors.Is(err, context.DeadlineExceeded)
		},
	}
	var ivs, cls, sls []float64
	planMix := map[string]int{}
	errs, degraded, expired, retried := 0, 0, 0, 0
	start := time.Now()
	for i := 0; i < n; i++ {
		if i > 0 && mean > 0 {
			time.Sleep(time.Duration(src.Expo(float64(mean))))
		}
		tmpl := templates[src.Intn(len(templates))]
		// The deadline covers the whole query including transport retries:
		// a retried attempt inherits whatever budget the first one left.
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if deadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, deadline)
		}
		var resp *netproto.Response
		err := retrier.DoContext(ctx, func(attempt int) error {
			if attempt > 0 {
				retried++
			}
			r, err := netproto.CallContext(ctx, addr, &netproto.Request{
				Kind:          netproto.KindExec,
				SQL:           tmpl.SQL,
				BusinessValue: value,
			}, 2*time.Minute)
			resp = r
			return err
		})
		cancel()
		if err != nil {
			errs++
			var remote *netproto.RemoteError
			switch {
			case errors.As(err, &remote) && remote.Expired,
				errors.Is(err, context.DeadlineExceeded):
				expired++
				fmt.Printf("%3d  %-4s EXPIRED: %v\n", i+1, tmpl.ID, err)
			case errors.As(err, &remote) && remote.Degraded:
				degraded++
				fmt.Printf("%3d  %-4s DEGRADED: %v\n", i+1, tmpl.ID, err)
			default:
				fmt.Printf("%3d  %-4s ERROR: %v\n", i+1, tmpl.ID, err)
			}
			continue
		}
		meta := resp.Meta
		ivs = append(ivs, meta.Value)
		cls = append(cls, meta.CLMinutes)
		sls = append(sls, meta.SLMinutes)
		planMix[planShape(meta.PlanSignature)]++
		mark := ""
		if meta.Degraded {
			degraded++
			mark = "  DEGRADED"
		}
		fmt.Printf("%3d  %-4s rows=%-5d IV=%.4f CL=%.2f SL=%.2f  %s%s\n",
			i+1, tmpl.ID, resp.Result.NumRows(), meta.Value, meta.CLMinutes, meta.SLMinutes, meta.PlanSignature, mark)
	}

	fmt.Printf("\nreplayed %d queries in %v (%d errors, %d expired, %d degraded, %d transport retries)\n",
		n, time.Since(start).Round(time.Millisecond), errs, expired, degraded, retried)
	if len(ivs) > 0 {
		fmt.Printf("information value: mean %.4f  p50 %.4f  p95 %.4f\n",
			stats.Mean(ivs), stats.Percentile(ivs, 50), stats.Percentile(ivs, 95))
		fmt.Printf("CL minutes:        mean %.2f  p50 %.2f  p95 %.2f\n",
			stats.Mean(cls), stats.Percentile(cls, 50), stats.Percentile(cls, 95))
		fmt.Printf("SL minutes:        mean %.2f  p50 %.2f  p95 %.2f\n",
			stats.Mean(sls), stats.Percentile(sls, 50), stats.Percentile(sls, 95))
		fmt.Println("plan mix:")
		for shape, count := range planMix {
			fmt.Printf("  %-12s %d\n", shape, count)
		}
	}
	return nil
}

// planShape classifies a plan signature as all-base, all-replica, or mixed.
func planShape(sig string) string {
	hasBase := strings.Contains(sig, "=base")
	hasReplica := strings.Contains(sig, "=replica")
	switch {
	case hasBase && hasReplica:
		return "mixed"
	case hasReplica:
		return "all-replica"
	default:
		return "all-base"
	}
}
