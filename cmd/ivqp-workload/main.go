// Command ivqp-workload replays a query workload against a live DSS server
// and reports measured information-value statistics — the load-generator
// side of a live deployment experiment.
//
//	# remotes seeded with TPC-H (see ivqp-remote), DSS on :7100
//	ivqp-workload -addr 127.0.0.1:7100 -n 60 -mean 300ms \
//	    -queries Q1,Q3,Q6,Q13,Q22 -value 1.0 -seed 1
//
// Arrivals follow an exponential process with the given mean gap; each
// arrival runs a randomly chosen template. The summary reports the IV,
// CL and SL distributions plus the plan mix the DSS chose.
//
// With -scenario, the tool instead replays a named preset from the
// scenario matrix (see ivqp-bench -fig scenario): the scenario's seeded
// arrival process sets the gaps (scaled to wall time by -timescale), its
// horizon mix sets per-query business values, and each synthetic query
// maps deterministically onto a TPC-H template — so the live cluster
// serves the same workload shape the DES benched. Scenario outage storms
// replay through fault proxies declared with repeated
// -outage-proxy site=listen=target flags (point the DSS's -remote at the
// listen addresses); without proxies, outage scenarios refuse to run
// rather than silently skipping the storms.
//
//	ivqp-workload -addr 127.0.0.1:7100 -scenario flash-zipf -timescale 10
//	ivqp-workload -addr 127.0.0.1:7100 -scenario outage-storm \
//	    -outage-proxy 1=127.0.0.1:7201=127.0.0.1:7101 \
//	    -outage-proxy 2=127.0.0.1:7202=127.0.0.1:7102
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ivdss/internal/core"
	"ivdss/internal/faults"
	"ivdss/internal/netproto"
	"ivdss/internal/stats"
	"ivdss/internal/synth"
	"ivdss/internal/tpch"
)

// proxyFlags accumulates repeated -outage-proxy site=listen=target flags.
type proxyFlags map[core.SiteID]proxySpec

type proxySpec struct{ listen, target string }

func (p proxyFlags) String() string { return fmt.Sprintf("%v", map[core.SiteID]proxySpec(p)) }

func (p proxyFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 3)
	if len(parts) != 3 {
		return fmt.Errorf("want site=listen=target, got %q", v)
	}
	var site int
	if _, err := fmt.Sscanf(parts[0], "%d", &site); err != nil || site < 1 {
		return fmt.Errorf("invalid site id %q", parts[0])
	}
	p[core.SiteID(site)] = proxySpec{listen: parts[1], target: parts[2]}
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "DSS server address")
	n := flag.Int("n", 30, "number of queries to replay")
	mean := flag.Duration("mean", 300*time.Millisecond, "mean interarrival gap")
	queries := flag.String("queries", "Q1,Q6,Q13,Q22", "comma-separated TPC-H template IDs")
	value := flag.Float64("value", 1, "business value per report")
	seed := flag.Int64("seed", 1, "workload seed")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-query wall-clock deadline (0 = no deadline)")
	epsilon := flag.Float64("epsilon", 0, "tighten the per-query deadline to the value horizon: give up once IV would fall below this (0 = off)")
	lambdaCL := flag.Float64("lambda-cl", .01, "computational-latency discount rate used for the -epsilon horizon")
	timescale := flag.Float64("timescale", 1.0/60, "experiment minutes per wall second for the -epsilon horizon and -scenario replay (must match the server)")
	scenario := flag.String("scenario", "", "replay this named scenario preset instead of the -n/-mean/-queries stream")
	proxies := proxyFlags{}
	flag.Var(proxies, "outage-proxy", "host a fault proxy for one remote site as site=listen=target (repeatable; used by outage scenarios)")
	flag.Parse()

	var err error
	if *scenario != "" {
		err = runScenario(*addr, *scenario, *seed, *timescale, *timeout, proxies)
	} else {
		var deadline time.Duration
		deadline, err = queryDeadline(*timeout, *epsilon, *value, *lambdaCL, *timescale)
		if err == nil {
			err = run(*addr, *n, *mean, *queries, *value, *seed, deadline)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivqp-workload:", err)
		os.Exit(1)
	}
}

// scenarioStream converts a generated scenario workload into the live
// replay schedule: wall-clock arrival offsets (experiment minutes scaled
// by timescale) and a deterministic synthetic-table → TPC-H template
// mapping, so the same spec drives DES and live runs.
func scenarioStream(wl *synth.Workload, timescale float64) ([]time.Duration, []tpch.Query, []float64, error) {
	if timescale <= 0 {
		return nil, nil, nil, fmt.Errorf("-timescale must be positive for scenario replay")
	}
	templates := tpch.Queries()
	offsets := make([]time.Duration, len(wl.Queries))
	picks := make([]tpch.Query, len(wl.Queries))
	values := make([]float64, len(wl.Queries))
	for i, q := range wl.Queries {
		offsets[i] = time.Duration(q.SubmitAt / timescale * float64(time.Second))
		// Hash the query's table set: stable across runs, independent of
		// arrival order, and spread across the template catalog.
		var key strings.Builder
		for _, id := range q.Tables {
			key.WriteString(string(id))
			key.WriteByte(',')
		}
		picks[i] = templates[stats.FNV1a(key.String())%uint64(len(templates))]
		values[i] = q.BusinessValue
	}
	return offsets, picks, values, nil
}

// stormWindows scales the scenario's outage schedule to wall time and
// binds each affected site to its proxy target name.
func stormWindows(wl *synth.Workload, timescale float64) []faults.Window {
	var out []faults.Window
	for _, o := range wl.Outages {
		out = append(out, faults.Window{
			Target: fmt.Sprintf("site%d", o.Site),
			Start:  time.Duration(o.Start / timescale * float64(time.Second)),
			End:    time.Duration(o.End / timescale * float64(time.Second)),
		})
	}
	return out
}

// runScenario replays a named scenario preset against a live DSS.
func runScenario(addr, name string, seed int64, timescale float64, timeout time.Duration, proxies proxyFlags) error {
	sc, err := synth.Preset(name)
	if err != nil {
		return err
	}
	sc.Seed = synth.SubSeedFor(seed, sc.Name)
	wl, err := sc.Generate()
	if err != nil {
		return err
	}
	offsets, picks, values, err := scenarioStream(wl, timescale)
	if err != nil {
		return err
	}

	// Outage storms need the fault proxies in place; running the scenario
	// without them would silently measure a calmer world than the DES did.
	if len(wl.Outages) > 0 && len(proxies) == 0 {
		return fmt.Errorf("scenario %s has outage storms: declare -outage-proxy site=listen=target for the affected sites", name)
	}
	if len(proxies) > 0 {
		hosted := make(map[string]*faults.Proxy, len(proxies))
		for site, spec := range proxies {
			p := faults.NewProxy(spec.target, stats.SubSeed(sc.Seed, fmt.Sprintf("proxy:%d", site)))
			bound, err := p.Listen(spec.listen)
			if err != nil {
				return err
			}
			defer p.Close()
			hosted[fmt.Sprintf("site%d", site)] = p
			fmt.Printf("proxy site%d: %s -> %s\n", site, bound, spec.target)
		}
		windows := stormWindows(wl, timescale)
		for _, w := range windows {
			if _, ok := hosted[w.Target]; !ok {
				return fmt.Errorf("scenario %s takes down %s but no -outage-proxy covers it", name, w.Target)
			}
		}
		if len(windows) > 0 {
			drv, err := faults.NewStormDriver(hosted, windows)
			if err != nil {
				return err
			}
			drv.Start()
			defer drv.Stop()
			fmt.Printf("storm schedule armed: %d windows across %d outages\n", len(windows), len(wl.Outages))
		}
	}

	fmt.Printf("replaying scenario %s: %d queries, %d tables, seed %d, timescale %g min/s\n",
		sc.Name, len(wl.Queries), sc.Tables, sc.Seed, timescale)
	return replay(addr, picks, offsets, values, timeout)
}

// queryDeadline folds -timeout and the optional -epsilon value horizon into
// one per-query wall-clock budget; zero means no deadline.
func queryDeadline(timeout time.Duration, epsilon, value, lambdaCL, timescale float64) (time.Duration, error) {
	d := timeout
	if epsilon > 0 {
		if timescale <= 0 {
			return 0, fmt.Errorf("-timescale must be positive when -epsilon is set")
		}
		rates := core.DiscountRates{CL: lambdaCL}
		if err := rates.Validate(); err != nil {
			return 0, err
		}
		minutes := core.ToleratedCL(value, epsilon, rates)
		wall := time.Duration(minutes / timescale * float64(time.Second))
		if wall <= 0 {
			return 0, fmt.Errorf("value %g is already below -epsilon %g: every report would be worthless", value, epsilon)
		}
		if d == 0 || wall < d {
			d = wall
		}
	}
	return d, nil
}

func run(addr string, n int, mean time.Duration, queryList string, value float64, seed int64, deadline time.Duration) error {
	if n <= 0 {
		return fmt.Errorf("need a positive query count")
	}
	var templates []tpch.Query
	for _, id := range strings.Split(queryList, ",") {
		q, err := tpch.QueryByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		templates = append(templates, q)
	}
	if len(templates) == 0 {
		return fmt.Errorf("no query templates selected")
	}

	// Draw order (gap, then template, per arrival) is preserved so a given
	// seed replays the exact stream it always has.
	src := stats.NewSource(seed)
	offsets := make([]time.Duration, n)
	picks := make([]tpch.Query, n)
	values := make([]float64, n)
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		if i > 0 && mean > 0 {
			at += time.Duration(src.Expo(float64(mean)))
		}
		offsets[i] = at
		picks[i] = templates[src.Intn(len(templates))]
		values[i] = value
	}
	return replay(addr, picks, offsets, values, deadline)
}

// replay pushes a fully materialized stream (template, arrival offset,
// business value per query) at the DSS, pacing arrivals against the
// stream's own schedule so burst shapes survive slow queries.
func replay(addr string, picks []tpch.Query, offsets []time.Duration, values []float64, deadline time.Duration) error {
	// Transport-level retries against the DSS itself; remote errors are the
	// DSS's answer (possibly a typed degraded or expired refusal) and are
	// not retried, and neither is a spent per-query deadline.
	retrier := netproto.Retrier{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Millisecond,
		Budget:      2 * time.Second,
		Retryable: func(err error) bool {
			var remote *netproto.RemoteError
			return !errors.As(err, &remote) && !errors.Is(err, context.DeadlineExceeded)
		},
	}
	var ivs, cls, sls []float64
	planMix := map[string]int{}
	errs, degraded, expired, retried := 0, 0, 0, 0
	start := time.Now()
	for i, tmpl := range picks {
		if wait := offsets[i] - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		// The deadline covers the whole query including transport retries:
		// a retried attempt inherits whatever budget the first one left.
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if deadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, deadline)
		}
		var resp *netproto.Response
		err := retrier.DoContext(ctx, func(attempt int) error {
			if attempt > 0 {
				retried++
			}
			r, err := netproto.CallContext(ctx, addr, &netproto.Request{
				Kind:          netproto.KindExec,
				SQL:           tmpl.SQL,
				BusinessValue: values[i],
			}, 2*time.Minute)
			resp = r
			return err
		})
		cancel()
		if err != nil {
			errs++
			var remote *netproto.RemoteError
			switch {
			case errors.As(err, &remote) && remote.Expired,
				errors.Is(err, context.DeadlineExceeded):
				expired++
				fmt.Printf("%3d  %-4s EXPIRED: %v\n", i+1, tmpl.ID, err)
			case errors.As(err, &remote) && remote.Degraded:
				degraded++
				fmt.Printf("%3d  %-4s DEGRADED: %v\n", i+1, tmpl.ID, err)
			default:
				fmt.Printf("%3d  %-4s ERROR: %v\n", i+1, tmpl.ID, err)
			}
			continue
		}
		meta := resp.Meta
		ivs = append(ivs, meta.Value)
		cls = append(cls, meta.CLMinutes)
		sls = append(sls, meta.SLMinutes)
		planMix[planShape(meta.PlanSignature)]++
		mark := ""
		if meta.Degraded {
			degraded++
			mark = "  DEGRADED"
		}
		fmt.Printf("%3d  %-4s rows=%-5d IV=%.4f CL=%.2f SL=%.2f  %s%s\n",
			i+1, tmpl.ID, resp.Result.NumRows(), meta.Value, meta.CLMinutes, meta.SLMinutes, meta.PlanSignature, mark)
	}

	fmt.Printf("\nreplayed %d queries in %v (%d errors, %d expired, %d degraded, %d transport retries)\n",
		len(picks), time.Since(start).Round(time.Millisecond), errs, expired, degraded, retried)
	if len(ivs) > 0 {
		fmt.Printf("information value: mean %.4f  p50 %.4f  p95 %.4f\n",
			stats.Mean(ivs), stats.Percentile(ivs, 50), stats.Percentile(ivs, 95))
		fmt.Printf("CL minutes:        mean %.2f  p50 %.2f  p95 %.2f\n",
			stats.Mean(cls), stats.Percentile(cls, 50), stats.Percentile(cls, 95))
		fmt.Printf("SL minutes:        mean %.2f  p50 %.2f  p95 %.2f\n",
			stats.Mean(sls), stats.Percentile(sls, 50), stats.Percentile(sls, 95))
		fmt.Println("plan mix:")
		for shape, count := range planMix {
			fmt.Printf("  %-12s %d\n", shape, count)
		}
	}
	return nil
}

// planShape classifies a plan signature as all-base, all-replica, or mixed.
func planShape(sig string) string {
	hasBase := strings.Contains(sig, "=base")
	hasReplica := strings.Contains(sig, "=replica")
	switch {
	case hasBase && hasReplica:
		return "mixed"
	case hasReplica:
		return "all-replica"
	default:
		return "all-base"
	}
}
