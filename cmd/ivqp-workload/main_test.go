package main

import (
	"testing"
	"time"
)

func TestPlanShape(t *testing.T) {
	tests := []struct {
		sig  string
		want string
	}{
		{"a=base b=base start=1.0", "all-base"},
		{"a=replica@2.0 start=1.0", "all-replica"},
		{"a=base b=replica@2.0 start=1.0", "mixed"},
	}
	for _, tt := range tests {
		if got := planShape(tt.sig); got != tt.want {
			t.Errorf("planShape(%q) = %q, want %q", tt.sig, got, tt.want)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("127.0.0.1:1", 0, 0, "Q1", 1, 1, 0); err == nil {
		t.Error("zero count accepted")
	}
	if err := run("127.0.0.1:1", 1, 0, "Q99", 1, 1, 0); err == nil {
		t.Error("unknown template accepted")
	}
}

func TestQueryDeadline(t *testing.T) {
	// -epsilon off: the plain timeout passes through.
	if d, err := queryDeadline(time.Minute, 0, 1, .01, 1.0/60); err != nil || d != time.Minute {
		t.Errorf("deadline = %v, %v", d, err)
	}
	// bv 1, epsilon .5, λcl .05 → ~13.5 experiment minutes; at timescale 10
	// that is ~1.35 wall seconds, well under the 1-minute timeout.
	d, err := queryDeadline(time.Minute, .5, 1, .05, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d < time.Second || d > 2*time.Second {
		t.Errorf("horizon deadline = %v, want ~1.35s", d)
	}
	// A value already below epsilon is refused up front.
	if _, err := queryDeadline(time.Minute, .5, .4, .05, 10); err == nil {
		t.Error("worthless value accepted")
	}
	if _, err := queryDeadline(time.Minute, .5, 1, .05, 0); err == nil {
		t.Error("zero timescale accepted with epsilon set")
	}
}
