package main

import (
	"reflect"
	"testing"
	"time"

	"ivdss/internal/synth"
)

func TestPlanShape(t *testing.T) {
	tests := []struct {
		sig  string
		want string
	}{
		{"a=base b=base start=1.0", "all-base"},
		{"a=replica@2.0 start=1.0", "all-replica"},
		{"a=base b=replica@2.0 start=1.0", "mixed"},
	}
	for _, tt := range tests {
		if got := planShape(tt.sig); got != tt.want {
			t.Errorf("planShape(%q) = %q, want %q", tt.sig, got, tt.want)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("127.0.0.1:1", 0, 0, "Q1", 1, 1, 0); err == nil {
		t.Error("zero count accepted")
	}
	if err := run("127.0.0.1:1", 1, 0, "Q99", 1, 1, 0); err == nil {
		t.Error("unknown template accepted")
	}
}

func TestScenarioStreamDeterministic(t *testing.T) {
	sc, err := synth.Preset("flash-zipf")
	if err != nil {
		t.Fatal(err)
	}
	sc = sc.Quick()
	wl, err := sc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	off1, picks1, vals1, err := scenarioStream(wl, 10)
	if err != nil {
		t.Fatal(err)
	}
	off2, picks2, vals2, err := scenarioStream(wl, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off1, off2) || !reflect.DeepEqual(vals1, vals2) {
		t.Error("scenario stream not deterministic")
	}
	for i := range picks1 {
		if picks1[i].ID != picks2[i].ID {
			t.Fatalf("template pick %d differs: %s vs %s", i, picks1[i].ID, picks2[i].ID)
		}
	}
	// Arrival order survives the scaling, and offsets shrink with a larger
	// timescale (more experiment minutes per wall second).
	for i := 1; i < len(off1); i++ {
		if off1[i] < off1[i-1] {
			t.Fatalf("offsets out of order at %d", i)
		}
	}
	off3, _, _, err := scenarioStream(wl, 100)
	if err != nil {
		t.Fatal(err)
	}
	last := len(off1) - 1
	if off3[last] >= off1[last] {
		t.Errorf("larger timescale did not compress the replay: %v vs %v", off3[last], off1[last])
	}
	if _, _, _, err := scenarioStream(wl, 0); err == nil {
		t.Error("zero timescale accepted")
	}
}

func TestStormWindowsScale(t *testing.T) {
	sc, err := synth.Preset("outage-storm")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := sc.Quick().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Outages) == 0 {
		t.Fatal("no outages generated")
	}
	windows := stormWindows(wl, 10)
	if len(windows) != len(wl.Outages) {
		t.Fatalf("%d windows for %d outages", len(windows), len(wl.Outages))
	}
	for i, w := range windows {
		o := wl.Outages[i]
		wantStart := time.Duration(o.Start / 10 * float64(time.Second))
		if w.Start != wantStart || w.End <= w.Start {
			t.Errorf("window %d = %+v, want start %v and positive span", i, w, wantStart)
		}
		if w.Target == "" || w.Target == "site0" {
			t.Errorf("window %d targets %q", i, w.Target)
		}
	}
}

func TestProxyFlags(t *testing.T) {
	p := proxyFlags{}
	if err := p.Set("1=127.0.0.1:7201=127.0.0.1:7101"); err != nil {
		t.Fatal(err)
	}
	if spec := p[1]; spec.listen != "127.0.0.1:7201" || spec.target != "127.0.0.1:7101" {
		t.Errorf("spec = %+v", spec)
	}
	for _, bad := range []string{"", "1=only-two", "x=a=b", "0=a=b"} {
		if err := p.Set(bad); err == nil {
			t.Errorf("bad flag %q accepted", bad)
		}
	}
}

func TestRunScenarioRejectsBadInput(t *testing.T) {
	if err := runScenario("127.0.0.1:1", "nope", 1, 10, 0, nil); err == nil {
		t.Error("unknown scenario accepted")
	}
	// Outage scenarios refuse to run without fault proxies rather than
	// silently measuring a calmer world than the DES benched.
	if err := runScenario("127.0.0.1:1", "outage-storm", 1, 10, 0, nil); err == nil {
		t.Error("outage scenario without proxies accepted")
	}
	if err := runScenario("127.0.0.1:1", "flash-zipf", 1, 0, 0, nil); err == nil {
		t.Error("zero timescale accepted")
	}
}

func TestQueryDeadline(t *testing.T) {
	// -epsilon off: the plain timeout passes through.
	if d, err := queryDeadline(time.Minute, 0, 1, .01, 1.0/60); err != nil || d != time.Minute {
		t.Errorf("deadline = %v, %v", d, err)
	}
	// bv 1, epsilon .5, λcl .05 → ~13.5 experiment minutes; at timescale 10
	// that is ~1.35 wall seconds, well under the 1-minute timeout.
	d, err := queryDeadline(time.Minute, .5, 1, .05, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d < time.Second || d > 2*time.Second {
		t.Errorf("horizon deadline = %v, want ~1.35s", d)
	}
	// A value already below epsilon is refused up front.
	if _, err := queryDeadline(time.Minute, .5, .4, .05, 10); err == nil {
		t.Error("worthless value accepted")
	}
	if _, err := queryDeadline(time.Minute, .5, 1, .05, 0); err == nil {
		t.Error("zero timescale accepted with epsilon set")
	}
}
