package main

import "testing"

func TestPlanShape(t *testing.T) {
	tests := []struct {
		sig  string
		want string
	}{
		{"a=base b=base start=1.0", "all-base"},
		{"a=replica@2.0 start=1.0", "all-replica"},
		{"a=base b=replica@2.0 start=1.0", "mixed"},
	}
	for _, tt := range tests {
		if got := planShape(tt.sig); got != tt.want {
			t.Errorf("planShape(%q) = %q, want %q", tt.sig, got, tt.want)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("127.0.0.1:1", 0, 0, "Q1", 1, 1); err == nil {
		t.Error("zero count accepted")
	}
	if err := run("127.0.0.1:1", 1, 0, "Q99", 1, 1); err == nil {
		t.Error("unknown template accepted")
	}
}
