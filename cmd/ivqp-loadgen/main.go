// Command ivqp-loadgen drives an open-loop query stream at a live DSS
// cluster: arrivals fire on their own exponential schedule and never wait
// for earlier responses, so — unlike the closed-loop ivqp-workload replay —
// the offered rate stays fixed while the cluster saturates. This is the
// live leg of the cluster scaling experiment (ivqp-bench -fig cluster is
// the DES leg).
//
// Each arrival routes client-side with the same cluster.ShardMap the
// shards themselves assume: the query's table footprint picks the shard,
// so overlapping queries land together and micro-batch MQO stays
// effective. The shard count is the length of -addrs.
//
//	# 4-shard cluster on :7200..:7203 (see ivqp-dss -shards 4)
//	ivqp-loadgen -addrs 127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203 \
//	    -n 2000 -rate 50 -queries Q1,Q3,Q6,Q13,Q22 -seed 1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"ivdss/internal/cluster"
	"ivdss/internal/core"
	"ivdss/internal/netproto"
	"ivdss/internal/sqlmini"
	"ivdss/internal/stats"
	"ivdss/internal/tpch"
)

func main() {
	addrsSpec := flag.String("addrs", "127.0.0.1:7200", "comma-separated shard addresses in shard-ID order; the shard count is the list length")
	n := flag.Int("n", 200, "total arrivals to fire")
	rate := flag.Float64("rate", 20, "offered arrival rate in queries per second (open loop)")
	queryList := flag.String("queries", "Q1,Q6,Q13,Q22", "comma-separated TPC-H template IDs arrivals draw from")
	value := flag.Float64("value", 1, "business value per report")
	seed := flag.Int64("seed", 1, "arrival-schedule and template-choice seed")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-query wall-clock deadline")
	tenants := flag.String("tenants", "", "comma-separated tenant names: each arrival is hash-assigned one and carries it to the cluster's weighted fair shedding")
	flag.Parse()

	if err := run(*addrsSpec, *n, *rate, *queryList, *value, *seed, *timeout, *tenants); err != nil {
		fmt.Fprintln(os.Stderr, "ivqp-loadgen:", err)
		os.Exit(1)
	}
}

// template is one prepared arrival choice: the SQL plus the footprint the
// shard map routes by.
type template struct {
	q      tpch.Query
	tables []core.TableID
}

// tally accumulates results across arrival goroutines.
type tally struct {
	mu        sync.Mutex
	ivs, cls  []float64
	completed int
	expired   int
	degraded  int
	errs      int
	perShard  map[cluster.ShardID]int
	tenantIV  map[string]float64
}

func run(addrsSpec string, n int, rate float64, queryList string, value float64, seed int64, timeout time.Duration, tenantSpec string) error {
	if n <= 0 {
		return fmt.Errorf("need a positive arrival count")
	}
	if rate <= 0 {
		return fmt.Errorf("need a positive arrival rate")
	}
	var addrs []string
	for _, a := range strings.Split(addrsSpec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("need at least one shard address")
	}
	smap, err := cluster.NewShardMap(len(addrs))
	if err != nil {
		return err
	}
	var templates []template
	for _, id := range strings.Split(queryList, ",") {
		q, err := tpch.QueryByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		stmt, err := sqlmini.Parse(q.SQL)
		if err != nil {
			return fmt.Errorf("template %s: %w", q.ID, err)
		}
		var tables []core.TableID
		for _, name := range stmt.TableNames() {
			tables = append(tables, core.TableID(strings.ToLower(name)))
		}
		templates = append(templates, template{q: q, tables: tables})
	}
	if len(templates) == 0 {
		return fmt.Errorf("no query templates selected")
	}
	var tenantNames []string
	for _, t := range strings.Split(tenantSpec, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tenantNames = append(tenantNames, t)
		}
	}

	fmt.Printf("offering %d arrivals at %.1f/s across %d shard(s), %d templates, seed %d\n",
		n, rate, len(addrs), len(templates), seed)

	// The arrival schedule is drawn up front from the seed; the firing loop
	// only sleeps and launches, so slow responses never push back arrivals.
	src := stats.NewSource(seed)
	meanGap := float64(time.Second) / rate
	offsets := make([]time.Duration, n)
	picks := make([]int, n)
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		if i > 0 {
			at += time.Duration(src.Expo(meanGap))
		}
		offsets[i] = at
		picks[i] = src.Intn(len(templates))
	}

	t := &tally{perShard: make(map[cluster.ShardID]int), tenantIV: make(map[string]float64)}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		if wait := offsets[i] - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		tmpl := templates[picks[i]]
		shard := smap.ShardOf(tmpl.tables)
		tenant := ""
		if len(tenantNames) > 0 {
			tenant = tenantNames[stats.FNV1a(fmt.Sprintf("arrival:%d", i))%uint64(len(tenantNames))]
		}
		t.mu.Lock()
		t.perShard[shard]++
		t.mu.Unlock()
		wg.Add(1)
		go func(addr string, tmpl template, tenant string) {
			defer wg.Done()
			fire(t, addr, tmpl, value, tenant, timeout)
		}(addrs[shard], tmpl, tenant)
	}
	offered := time.Since(start)
	wg.Wait()
	total := time.Since(start)

	achieved := float64(n) / offered.Seconds()
	fmt.Printf("\noffered %d arrivals in %v (achieved rate %.1f/s), drained in %v\n",
		n, offered.Round(time.Millisecond), achieved, total.Round(time.Millisecond))
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Printf("completed %d, expired %d, degraded %d, errors %d\n",
		t.completed, t.expired, t.degraded, t.errs)
	var shardLine []string
	for s := 0; s < len(addrs); s++ {
		shardLine = append(shardLine, fmt.Sprintf("%d:%d", s, t.perShard[cluster.ShardID(s)]))
	}
	fmt.Printf("arrivals per shard: %s\n", strings.Join(shardLine, "  "))
	if len(t.ivs) > 0 {
		totalIV := 0.0
		for _, v := range t.ivs {
			totalIV += v
		}
		fmt.Printf("information value: total %.3f  mean %.4f  p95 %.4f\n",
			totalIV, stats.Mean(t.ivs), stats.Percentile(t.ivs, 95))
		fmt.Printf("CL minutes:        mean %.2f  p95 %.2f  p99 %.2f\n",
			stats.Mean(t.cls), stats.Percentile(t.cls, 95), stats.Percentile(t.cls, 99))
	}
	for tenant, iv := range t.tenantIV {
		fmt.Printf("tenant %-8s delivered IV %.3f\n", tenant, iv)
	}
	return nil
}

// fire runs one arrival to completion and folds its outcome into the
// tally. Transport failures retry briefly; the DSS's own refusals (shed,
// expired, degraded) are answers, not failures.
func fire(t *tally, addr string, tmpl template, value float64, tenant string, timeout time.Duration) {
	retrier := netproto.Retrier{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Millisecond,
		Budget:      2 * time.Second,
		Retryable: func(err error) bool {
			var remote *netproto.RemoteError
			return !errors.As(err, &remote) && !errors.Is(err, context.DeadlineExceeded)
		},
	}
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()
	var resp *netproto.Response
	err := retrier.DoContext(ctx, func(int) error {
		r, err := netproto.CallContext(ctx, addr, &netproto.Request{
			Kind:          netproto.KindExec,
			SQL:           tmpl.q.SQL,
			BusinessValue: value,
			Tenant:        tenant,
		}, timeout)
		resp = r
		return err
	})
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		var remote *netproto.RemoteError
		switch {
		case errors.As(err, &remote) && remote.Expired,
			errors.Is(err, context.DeadlineExceeded):
			t.expired++
		case errors.As(err, &remote) && remote.Degraded:
			t.degraded++
			t.errs++
		default:
			t.errs++
		}
		return
	}
	meta := resp.Meta
	t.completed++
	t.ivs = append(t.ivs, meta.Value)
	t.cls = append(t.cls, meta.CLMinutes)
	if meta.Degraded {
		t.degraded++
	}
	if tenant != "" {
		t.tenantIV[tenant] += meta.Value
	}
}
